// Package cpu implements a cycle-level model of the BOOM-like 4-way
// superscalar out-of-order core the paper evaluates on (Table 2): an
// 8-wide front-end with a 48-entry fetch buffer, 4-wide decode/commit,
// a 192-entry ROB, per-class issue queues, a load/store unit with
// store-to-load forwarding and memory-ordering-violation detection, and
// the memory hierarchy and TAGE branch predictor substrates.
//
// The core tracks the nine TEA performance events for every in-flight
// µop in its Performance Signature Vector and exposes a probe interface
// through which the profiling techniques observe fetch, dispatch,
// commit, squash, and the per-cycle commit state — mirroring how the
// paper evaluates all techniques on one TraceDoctor trace.
package cpu

import (
	"fmt"
	"strings"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Config is the core configuration. The defaults follow Table 2.
type Config struct {
	// Front-end.
	FetchWidth      int
	FetchBufEntries int
	DecodeWidth     int
	// FrontEndDepth is the fetch-to-dispatch pipeline depth in cycles.
	FrontEndDepth uint64
	// RedirectPenalty is the front-end refill delay after a pipeline
	// flush or branch-mispredict redirect.
	RedirectPenalty uint64
	// BTBEntries sizes the direct-mapped branch target buffer; taken
	// branches whose target is not cached cost a front-end resteer.
	BTBEntries int
	// BTBMissPenalty is the resteer bubble for a BTB miss on a
	// correctly-predicted taken branch.
	BTBMissPenalty uint64

	// Back-end.
	ROBEntries    int
	CommitWidth   int
	IntIQEntries  int
	IntIssueWidth int
	MemIQEntries  int
	MemIssueWidth int
	FPIQEntries   int
	FPIssueWidth  int
	LQEntries     int
	SQEntries     int

	// Robustness guards (DESIGN.md §7). Zero selects the package
	// defaults; both guards end the run with a typed error
	// (simerr.ErrRunaway / simerr.ErrDeadlock) instead of panicking or
	// looping forever.
	//
	// MaxCycles bounds total simulated cycles (runaway programs).
	MaxCycles uint64
	// WatchdogCommitCycles is the forward-progress watchdog: the run
	// fails if no instruction commits for this many consecutive cycles
	// while the program has not finished.
	WatchdogCommitCycles uint64

	// Functional-unit latencies (cycles from issue to completion).
	ALULatency    uint64
	MulLatency    uint64
	DivLatency    uint64 // unpipelined
	FPLatency     uint64
	FDivLatency   uint64 // unpipelined
	FSqrtLatency  uint64 // unpipelined
	BranchLatency uint64
	// ForwardLatency is the store-to-load forwarding latency.
	ForwardLatency uint64

	// Substrates.
	Mem mem.Config
	BP  branch.Config
}

// DefaultConfig returns the Table 2 baseline: an out-of-order BOOM at
// 3.2 GHz with an 8-wide fetch / 48-entry fetch buffer front-end,
// 4-wide decode and commit, 192-entry ROB, 80-entry 4-issue integer
// queue, 48-entry dual-issue memory and floating-point queues, and a
// 64-entry load/store queue (split 32 load + 32 store).
func DefaultConfig() Config {
	return Config{
		FetchWidth:      8,
		FetchBufEntries: 48,
		DecodeWidth:     4,
		FrontEndDepth:   4,
		RedirectPenalty: 6,
		BTBEntries:      512,
		BTBMissPenalty:  3,

		ROBEntries:    192,
		CommitWidth:   4,
		IntIQEntries:  80,
		IntIssueWidth: 4,
		MemIQEntries:  48,
		MemIssueWidth: 2,
		FPIQEntries:   48,
		FPIssueWidth:  2,

		ALULatency:     1,
		MulLatency:     3,
		DivLatency:     16,
		FPLatency:      4,
		FDivLatency:    18,
		FSqrtLatency:   26,
		BranchLatency:  1,
		ForwardLatency: 2,

		LQEntries: 32,
		SQEntries: 32,

		Mem: mem.DefaultConfig(),
		BP:  branch.DefaultConfig(),
	}
}

// Latency returns the issue-to-complete latency for an opcode.
func (c *Config) Latency(op isa.Op) uint64 {
	switch op {
	case isa.OpMul:
		return c.MulLatency
	case isa.OpDiv, isa.OpRem:
		return c.DivLatency
	case isa.OpFDiv:
		return c.FDivLatency
	case isa.OpFSqrt:
		return c.FSqrtLatency
	}
	switch isa.ClassOf(op) {
	case isa.ClassFP:
		return c.FPLatency
	case isa.ClassBranch:
		return c.BranchLatency
	}
	return c.ALULatency
}

// Unpipelined reports whether the opcode occupies its functional unit
// for its full latency.
func Unpipelined(op isa.Op) bool {
	switch op {
	case isa.OpDiv, isa.OpRem, isa.OpFDiv, isa.OpFSqrt:
		return true
	}
	return false
}

// Describe renders the configuration in the style of Table 2 of the
// paper; cmd/teaexp tab2 prints it.
func (c *Config) Describe() string {
	var b strings.Builder
	row := func(part, text string) {
		fmt.Fprintf(&b, "%-10s %s\n", part, text)
	}
	row("Core", "OoO BOOM-like model @ 3.2 GHz (cycle-level)")
	row("Front-end", fmt.Sprintf("%d-wide fetch, %d-entry fetch buffer, %d-wide decode, TAGE branch predictor (%d tagged tables), %d-cycle redirect",
		c.FetchWidth, c.FetchBufEntries, c.DecodeWidth, len(c.BP.HistoryLengths), c.RedirectPenalty))
	row("Execute", fmt.Sprintf("%d-entry ROB, %d-entry %d-issue integer queue, %d-entry %d-issue memory queue, %d-entry %d-issue floating-point queue, %d-wide commit",
		c.ROBEntries, c.IntIQEntries, c.IntIssueWidth, c.MemIQEntries, c.MemIssueWidth, c.FPIQEntries, c.FPIssueWidth, c.CommitWidth))
	row("LSU", fmt.Sprintf("%d-entry load queue, %d-entry store queue, store-to-load forwarding, ordering-violation replay", c.LQEntries, c.SQEntries))
	row("L1", fmt.Sprintf("%d KB %d-way I-cache, %d KB %d-way D-cache w/ %d MSHRs, next-line I-prefetcher: %v",
		c.Mem.L1I.SizeBytes>>10, c.Mem.L1I.Ways, c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Ways, c.Mem.L1D.MSHRs, c.Mem.NextLinePrefetch))
	row("LLC", fmt.Sprintf("%d MiB %d-way w/ %d MSHRs", c.Mem.LLC.SizeBytes>>20, c.Mem.LLC.Ways, c.Mem.LLC.MSHRs))
	row("TLB", fmt.Sprintf("%d-entry fully-assoc L1 D-TLB, %d-entry fully-assoc L1 I-TLB, %d-entry direct-mapped L2 TLB, %d-cycle walk",
		c.Mem.DTLB.Entries, c.Mem.ITLB.Entries, c.Mem.Walker.L2.Entries, c.Mem.Walker.WalkLatency))
	row("Memory", fmt.Sprintf("%d-cycle latency, one line per %d cycles (~16 GB/s at 3.2 GHz)",
		c.Mem.DRAM.Latency, c.Mem.DRAM.CyclesPerLine))
	return b.String()
}
