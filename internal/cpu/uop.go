package cpu

import (
	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/isa"
)

// UOp is one in-flight micro-operation: a dynamic instruction plus its
// timing state and Performance Signature Vector. µop storage is
// recycled through the core's free list the moment it leaves the
// pipeline, so *UOp pointers must not escape internal/cpu — probes see
// value-typed Refs instead (the tealint proberetain analyzer enforces
// this).
type UOp struct {
	// Dyn is the functional record of the instruction.
	Dyn *emu.Inst
	// PSV accumulates the performance events this µop is subjected to.
	PSV events.PSV

	// Pipeline timestamps.
	FetchCycle    uint64
	DispatchCycle uint64
	IssueCycle    uint64
	CompleteCycle uint64
	CommitCycle   uint64

	dispatched bool
	issued     bool
	completed  bool
	committed  bool
	squashed   bool

	// Mispredicted marks a conditional branch whose predicted direction
	// was wrong (FL-MB is set in the PSV as well).
	Mispredicted bool

	// gen counts reuses of this µop's storage. A consumer that wires a
	// source dependency records the producer's generation; a mismatch
	// later means the producer was recycled, which can only happen
	// after it committed — i.e. the operand is architecturally ready.
	gen uint32

	// Register dependencies: the producing µops of the two source
	// operands (nil when the value is architecturally ready), tagged
	// with the producer's generation at wiring time.
	src1, src2       *UOp
	src1Gen, src2Gen uint32

	// Load/store unit state.
	aguDone    uint64 // cycle the effective address is available
	translated bool
	tlbDone    uint64
	// valueFromSeq is the sequence number of the store a load forwarded
	// from, or -1 when the value came from the cache.
	valueFromSeq int64
	hasValue     bool   // load obtained its value (forwarded or cache access issued)
	drainStarted bool   // committed store began its cache write
	drainDone    uint64 // cycle the store's cache write completes
}

// PC returns the instruction's code address.
func (u *UOp) PC() uint64 { return u.Dyn.PC }

// Seq returns the dynamic sequence number.
func (u *UOp) Seq() uint64 { return u.Dyn.Seq }

// Op returns the opcode.
func (u *UOp) Op() isa.Op { return u.Dyn.Static.Op }

// Committed reports whether the µop has committed.
func (u *UOp) Committed() bool { return u.committed }

// Ref returns the value-typed view handed to probes.
func (u *UOp) Ref() Ref { return Ref{Seq: u.Dyn.Seq, PC: u.Dyn.PC, PSV: u.PSV} }

// ready reports whether both source operands are available at cycle.
func (u *UOp) ready(cycle uint64) bool {
	return srcReady(u.src1, u.src1Gen, cycle) && srcReady(u.src2, u.src2Gen, cycle)
}

// srcReady checks one source dependency. A generation mismatch means the
// producer's storage was recycled after it committed, so the operand is
// architecturally ready.
func srcReady(p *UOp, gen uint32, cycle uint64) bool {
	return p == nil || p.gen != gen || (p.completed && p.CompleteCycle <= cycle)
}

// doneAt reports whether the µop has finished executing by cycle.
func (u *UOp) doneAt(cycle uint64) bool {
	return u.completed && u.CompleteCycle <= cycle
}

// rob is a fixed-capacity ring buffer of µops in program order.
type rob struct {
	buf   []*UOp
	head  int
	count int
}

func newROB(capacity int) *rob { return &rob{buf: make([]*UOp, capacity)} }

func (r *rob) empty() bool { return r.count == 0 }
func (r *rob) full() bool  { return r.count == len(r.buf) }
func (r *rob) len() int    { return r.count }

func (r *rob) push(u *UOp) {
	if r.full() {
		//tealint:ignore nakedpanic dispatch checks rob.full() first; overflow is a simulator bug, recovered at API boundaries
		panic("cpu: ROB overflow")
	}
	r.buf[(r.head+r.count)%len(r.buf)] = u
	r.count++
}

func (r *rob) headUOp() *UOp {
	if r.empty() {
		//tealint:ignore nakedpanic commit checks rob.empty() first; underflow is a simulator bug, recovered at API boundaries
		panic("cpu: ROB underflow")
	}
	return r.buf[r.head]
}

func (r *rob) pop() *UOp {
	u := r.headUOp()
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return u
}

// at returns the i'th oldest µop (0 = head).
func (r *rob) at(i int) *UOp { return r.buf[(r.head+i)%len(r.buf)] }

// squashYoungerThan removes every µop with a sequence number greater
// than seq from the tail, appending the removed µops (oldest first) to
// out; the caller passes a reusable scratch slice so squashes do not
// allocate.
func (r *rob) squashYoungerThan(seq uint64, out []*UOp) []*UOp {
	base := len(out)
	for r.count > 0 {
		tail := r.buf[(r.head+r.count-1)%len(r.buf)]
		if tail.Seq() <= seq {
			break
		}
		r.buf[(r.head+r.count-1)%len(r.buf)] = nil
		r.count--
		out = append(out, tail)
	}
	// Reverse the appended section to oldest-first.
	for i, j := base, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
