package cpu

import (
	"strings"
	"testing"
)

func TestDefaultConfigValidates(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default configuration invalid: %v", err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero fetch width", func(c *Config) { c.FetchWidth = 0 }, "FetchWidth"},
		{"zero rob", func(c *Config) { c.ROBEntries = 0 }, "ROBEntries"},
		{"commit wider than rob", func(c *Config) { c.ROBEntries = 2; c.CommitWidth = 4 }, "CommitWidth"},
		{"zero alu latency", func(c *Config) { c.ALULatency = 0 }, "latencies"},
		{"bad cache sets", func(c *Config) { c.Mem.L1D.SizeBytes = 3000 }, "L1D"},
		{"bad line size", func(c *Config) { c.Mem.LLC.LineBytes = 48 }, "LLC"},
		{"zero mshrs", func(c *Config) { c.Mem.L1I.MSHRs = 0 }, "L1I"},
		{"zero dram rate", func(c *Config) { c.Mem.DRAM.CyclesPerLine = 0 }, "DRAM"},
		{"bad tlb", func(c *Config) { c.Mem.DTLB.Entries = 0 }, "DTLB"},
		{"bad l2 tlb sets", func(c *Config) { c.Mem.Walker.L2.Entries = 1000; c.Mem.Walker.L2.Ways = 1 }, "L2TLB"},
		{"zero sq", func(c *Config) { c.SQEntries = 0 }, "SQEntries"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateReportsAllProblems(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 0
	cfg.SQEntries = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "FetchWidth") || !strings.Contains(msg, "SQEntries") {
		t.Errorf("joined error missing a problem: %q", msg)
	}
}
