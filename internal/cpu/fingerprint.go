// Canonical state fingerprints: a translation-invariant hash of every
// piece of core state that can influence future trace records. Two
// cores with equal fingerprints — one mid-way through a serial run,
// one restored from a checkpoint and warmed up to the same commit
// boundary — will emit identical trace records from that point on, up
// to a constant cycle offset.
//
// Translation invariance is the load-bearing property: a restored core
// runs on its own cycle clock (starting at 0), so every absolute cycle
// stamp is reduced to an offset from the current cycle, LRU stamps are
// reduced to in-set ranks (mem/branch CanonState), and pointer-valued
// dependency wiring is reduced to producer sequence numbers. State
// with no forward influence is deliberately excluded: statistics, the
// run guards (MaxCycles, watchdog anchor), recycling pools whose
// storage is fully overwritten on allocation, per-cycle scratch, and
// the functional stream's register/memory contents (which are a pure
// function of the committed sequence number and therefore equal
// whenever the sequence numbers are). The checkpoint state-coverage
// test (internal/checkpoint) pins this classification field by field.
package cpu

const (
	fpOffset = 14695981039346656037
	fpPrime  = 1099511628211
)

// Fingerprint hashes the core's canonical state. The capture layer
// compares the fingerprint at the end of segment k with the one at the
// start of segment k+1; equality chains exactness forward from the
// from-reset segment 0.
func (c *CPU) Fingerprint() uint64 {
	dst := c.canonState(make([]uint64, 0, 4096))
	h := uint64(fpOffset)
	for _, v := range dst {
		h = (h ^ v) * fpPrime
	}
	return h
}

// CanonState appends the core's full canonical state vector — the
// exact values Fingerprint hashes. Exported for the checkpoint
// equivalence tests, which compare vectors element-wise to localize a
// divergence instead of just detecting one.
func (c *CPU) CanonState(dst []uint64) []uint64 { return c.canonState(dst) }

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// rel reduces an absolute cycle stamp to an offset from now. Unset
// stamps (0 — the clock starts at 1, so no real stamp is 0) stay 0;
// everything else becomes a wrapping difference, equal across two
// cores whenever the stamp's age is equal.
func rel(v, cycle uint64) uint64 {
	if v == 0 {
		return 0
	}
	return v - cycle
}

// relFuture reduces a busy-until style stamp: only its future part
// affects behavior, so past values canonicalize to 0.
func relFuture(v, cycle uint64) uint64 {
	if v > cycle {
		return v - cycle
	}
	return 0
}

// srcCanon canonicalizes one dependency wire: 0 when the operand reads
// as architecturally ready (nil, recycled producer, or completed
// producer), producer seq+1 otherwise.
func (c *CPU) srcCanon(p *UOp, gen uint32) uint64 {
	if p == nil || p.gen != gen || p.doneAt(c.cycle) {
		return 0
	}
	return p.Seq() + 1
}

// canonUOp appends one µop's full canonical state.
func (c *CPU) canonUOp(dst []uint64, u *UOp) []uint64 {
	flags := b2u(u.dispatched) | b2u(u.issued)<<1 | b2u(u.completed)<<2 |
		b2u(u.committed)<<3 | b2u(u.squashed)<<4 | b2u(u.Mispredicted)<<5 |
		b2u(u.translated)<<6 | b2u(u.hasValue)<<7 | b2u(u.drainStarted)<<8
	return append(dst,
		u.Seq()+1, uint64(u.PSV), flags,
		rel(u.FetchCycle, c.cycle), rel(u.DispatchCycle, c.cycle),
		rel(u.IssueCycle, c.cycle), rel(u.CompleteCycle, c.cycle),
		rel(u.CommitCycle, c.cycle), rel(u.aguDone, c.cycle),
		rel(u.tlbDone, c.cycle), rel(u.drainDone, c.cycle),
		c.srcCanon(u.src1, u.src1Gen), c.srcCanon(u.src2, u.src2Gen),
		uint64(u.valueFromSeq+1))
}

// canonSeqList appends a queue as an ordered list of sequence numbers;
// used for queues whose µops are fully canonicalized via the ROB.
func canonSeqList(dst []uint64, q []*UOp) []uint64 {
	dst = append(dst, uint64(len(q)))
	for _, u := range q {
		dst = append(dst, u.Seq()+1)
	}
	return dst
}

func (c *CPU) canonState(dst []uint64) []uint64 {
	// In-flight window. ROB µops carry full state; issue/load queues
	// reference ROB entries, so their order (which drives issue
	// selection) is captured as sequence lists. The fetch buffer, store
	// queue, and drain queue can hold µops outside the ROB
	// (pre-dispatch, and committed stores awaiting their drain), so
	// they carry full state too.
	dst = append(dst, uint64(c.rob.len()))
	for i := 0; i < c.rob.len(); i++ {
		dst = c.canonUOp(dst, c.rob.at(i))
	}
	dst = append(dst, uint64(len(c.fetchBuf)))
	for _, u := range c.fetchBuf {
		dst = c.canonUOp(dst, u)
	}
	dst = append(dst, uint64(len(c.sq)))
	for _, u := range c.sq {
		dst = c.canonUOp(dst, u)
	}
	dst = append(dst, uint64(len(c.drainQ)))
	for _, u := range c.drainQ {
		dst = c.canonUOp(dst, u)
	}
	dst = canonSeqList(dst, c.iqInt)
	dst = canonSeqList(dst, c.iqMem)
	dst = canonSeqList(dst, c.iqFP)
	dst = canonSeqList(dst, c.lq)
	dst = canonSeqList(dst, c.pendingLoads)

	// Front-end and serialization state.
	var await, block, next uint64
	if c.awaitBranch != nil {
		await = c.awaitBranch.Seq() + 1
	}
	if c.blockDispatch != nil {
		block = c.blockDispatch.Seq() + 1
	}
	if c.fetchNext != nil {
		next = c.fetchNext.Seq + 1
	}
	var last uint64
	if c.haveLast {
		last = c.lastRef.Seq + 1
	}
	dst = append(dst, await, block, next, last,
		b2u(c.pendDRL1)|b2u(c.pendDRTLB)<<1|b2u(c.streamDry)<<2|b2u(c.flushActive)<<3,
		c.lastLine,
		relFuture(c.fetchResume, c.cycle),
		relFuture(c.divBusyUntil, c.cycle),
		relFuture(c.fdivBusyUntil, c.cycle),
		c.pendingOverhead)

	// Return-address stack and BTB (nil canonicalizes as all zeros).
	dst = append(dst, uint64(len(c.ras)))
	for _, idx := range c.ras {
		dst = append(dst, uint64(idx))
	}
	if c.cfg.BTBEntries > 0 {
		if c.btb == nil {
			for i := 0; i < c.cfg.BTBEntries; i++ {
				dst = append(dst, 0)
			}
		} else {
			dst = append(dst, c.btb...)
		}
	}

	dst = c.bp.CanonState(dst)
	return c.hier.CanonState(dst, c.cycle)
}
