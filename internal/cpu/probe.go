package cpu

import "repro/internal/events"

// Ref is a value-typed view of one µop, handed to probes instead of the
// *UOp itself. The core recycles µop storage through a free list the
// moment a µop leaves the pipeline, so probes MUST NOT retain *UOp
// pointers — a retained pointer would silently start describing a
// different instruction. Everything a profiling technique needs is in
// the ref (or arrives in a later hook):
//
//   - Seq identifies the dynamic instruction. It is stable across
//     hooks, so techniques that tag an instruction in the front end
//     (IBS/SPE/RIS) match it at commit by sequence number. A squashed
//     sequence number is re-fetched after the squash; OnSquash always
//     fires before the re-fetch, so seq matching is exact.
//   - PC is the static instruction's code address.
//   - PSV is the signature observed so far. It is final — and part of
//     the trace-replay contract — only at OnCommit and in the
//     CycleInfo refs of committed/flushed instructions. At
//     OnFetch/OnDispatch (and for the stalled head in CycleInfo) it is
//     a live snapshot that offline replay does not reproduce; probes
//     must read event state at commit.
//
// The tealint proberetain analyzer enforces the no-retention rule:
// outside internal/cpu, no struct field or package variable may hold a
// *cpu.UOp.
type Ref struct {
	// Seq is the dynamic sequence number.
	Seq uint64
	// PC is the instruction's code address.
	PC uint64
	// PSV is the signature observed so far (final at commit).
	PSV events.PSV
}

// CycleInfo describes the commit-stage state of one cycle, following
// the four-state classification of Section 2 of the paper. The struct
// is reused across cycles; probes must not retain it or the Committed
// slice.
type CycleInfo struct {
	// Cycle is the cycle number (starting at 1).
	Cycle uint64
	// State is the commit-state classification.
	State events.CommitState
	// Committed lists the µops that committed this cycle (Compute), in
	// commit order; their PSVs are final.
	Committed []Ref
	// Head is the stalled ROB-head µop (Stalled). Its PSV is a live
	// snapshot (see Ref).
	Head Ref
	// LastCommitted is the flush-causing, already-committed µop
	// (Flushed); its PSV is final.
	LastCommitted Ref
}

// Probe observes the core cycle by cycle. All attached profiling
// techniques implement Probe, so they sample the exact same execution —
// the evaluation methodology of Section 4 (multiple configurations
// processed out-of-band from one trace). The same hooks fire, with the
// same values, when a recorded trace is replayed offline
// (internal/trace), so a probe cannot tell replay from a live run.
type Probe interface {
	// OnCycle fires once per cycle after the commit stage.
	OnCycle(ci *CycleInfo)
	// OnFetch fires when a µop is fetched (RIS tags here).
	OnFetch(r Ref, cycle uint64)
	// OnDispatch fires when a µop is dispatched (IBS/SPE tag here).
	OnDispatch(r Ref, cycle uint64)
	// OnCommit fires when a µop commits; its PSV is final.
	OnCommit(r Ref, cycle uint64)
	// OnSquash fires when an in-flight µop is squashed.
	OnSquash(r Ref, cycle uint64)
	// OnDone fires when the program finishes.
	OnDone(totalCycles uint64)
}

// BaseProbe is a no-op Probe for embedding; probes override only the
// hooks they need.
type BaseProbe struct{}

// OnCycle implements Probe.
func (BaseProbe) OnCycle(*CycleInfo) {}

// OnFetch implements Probe.
func (BaseProbe) OnFetch(Ref, uint64) {}

// OnDispatch implements Probe.
func (BaseProbe) OnDispatch(Ref, uint64) {}

// OnCommit implements Probe.
func (BaseProbe) OnCommit(Ref, uint64) {}

// OnSquash implements Probe.
func (BaseProbe) OnSquash(Ref, uint64) {}

// OnDone implements Probe.
func (BaseProbe) OnDone(uint64) {}
