package cpu

import "repro/internal/events"

// CycleInfo describes the commit-stage state of one cycle, following
// the four-state classification of Section 2 of the paper. The struct
// is reused across cycles; probes must not retain it (retaining the
// µop pointers it references is fine).
type CycleInfo struct {
	// Cycle is the cycle number (starting at 1).
	Cycle uint64
	// State is the commit-state classification.
	State events.CommitState
	// Committed lists the µops that committed this cycle (Compute).
	Committed []*UOp
	// Head is the stalled ROB-head µop (Stalled).
	Head *UOp
	// LastCommitted is the flush-causing, already-committed µop
	// (Flushed).
	LastCommitted *UOp
}

// Probe observes the core cycle by cycle. All attached profiling
// techniques implement Probe, so they sample the exact same execution —
// the evaluation methodology of Section 4 (multiple configurations
// processed out-of-band from one trace).
type Probe interface {
	// OnCycle fires once per cycle after the commit stage.
	OnCycle(ci *CycleInfo)
	// OnFetch fires when a µop is fetched (RIS tags here).
	OnFetch(u *UOp, cycle uint64)
	// OnDispatch fires when a µop is dispatched (IBS/SPE tag here).
	OnDispatch(u *UOp, cycle uint64)
	// OnCommit fires when a µop commits; its PSV is final.
	OnCommit(u *UOp, cycle uint64)
	// OnSquash fires when an in-flight µop is squashed.
	OnSquash(u *UOp, cycle uint64)
	// OnDone fires when the program finishes.
	OnDone(totalCycles uint64)
}

// BaseProbe is a no-op Probe for embedding; probes override only the
// hooks they need.
type BaseProbe struct{}

// OnCycle implements Probe.
func (BaseProbe) OnCycle(*CycleInfo) {}

// OnFetch implements Probe.
func (BaseProbe) OnFetch(*UOp, uint64) {}

// OnDispatch implements Probe.
func (BaseProbe) OnDispatch(*UOp, uint64) {}

// OnCommit implements Probe.
func (BaseProbe) OnCommit(*UOp, uint64) {}

// OnSquash implements Probe.
func (BaseProbe) OnSquash(*UOp, uint64) {}

// OnDone implements Probe.
func (BaseProbe) OnDone(uint64) {}
