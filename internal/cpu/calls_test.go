package cpu

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

// callProgram builds a loop that calls a leaf function each iteration.
func callProgram(iters int64) *program.Program {
	b := program.NewBuilder("calls")
	b.Func("main")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), iters)
	b.Movi(isa.X(10), 0)
	b.Label("loop")
	b.Call("leaf")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "loop")
	b.Halt()
	b.Func("leaf")
	b.Label("leaf")
	b.Addi(isa.X(10), isa.X(10), 7)
	b.Ret()
	return b.MustBuild()
}

func TestCallReturnSemantics(t *testing.T) {
	p := callProgram(25)
	s := emu.NewStream(p)
	n := uint64(0)
	for {
		d := s.Next()
		if d == nil {
			break
		}
		n++
		s.Release(d.Seq + 1)
	}
	if got := s.Reg(isa.X(10)); got != 25*7 {
		t.Errorf("leaf accumulated %d, want %d", got, 25*7)
	}
	// 3 setup + 25*(call, add, ret, addi, blt) + halt
	if want := uint64(3 + 25*5 + 1); n != want {
		t.Errorf("dynamic count %d, want %d", n, want)
	}
}

func TestRASPredictsBalancedCalls(t *testing.T) {
	p := callProgram(500)
	stats := New(DefaultConfig(), p).Run()
	// The loop branch may mispredict at the end; returns must not.
	if stats.Mispredicts > 5 {
		t.Errorf("%d mispredicts for perfectly balanced call/ret, want ~0", stats.Mispredicts)
	}
	if stats.Committed == 0 {
		t.Fatalf("nothing committed")
	}
}

// deepRecursion builds a call chain deeper than the 16-entry RAS.
func deepRecursion(depth int) *program.Program {
	b := program.NewBuilder("deep")
	b.Func("main")
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(11), 0)
	b.Movi(isa.X(12), 40) // outer iterations
	b.Label("outer")
	b.Call(fnName(0))
	b.Addi(isa.X(11), isa.X(11), 1)
	b.Blt(isa.X(11), isa.X(12), "outer")
	b.Halt()
	// f0 calls f1 calls f2 ... using a software stack for link values.
	stack := b.Alloc(8*uint64(depth)+64, 64)
	for i := 0; i < depth; i++ {
		name := fnName(i)
		b.Func(name)
		b.Label(name)
		// Push the link register to the software stack slot for level i.
		b.MoviU(isa.X(20), stack+uint64(i)*8)
		b.Store(isa.X(20), isa.X(31), 0)
		if i+1 < depth {
			b.Call(fnName(i + 1))
		} else {
			b.Addi(isa.X(9), isa.X(9), 1)
		}
		// Pop the link register and return.
		b.MoviU(isa.X(20), stack+uint64(i)*8)
		b.Load(isa.X(31), isa.X(20), 0)
		b.Ret()
	}
	return b.MustBuild()
}

func fnName(i int) string {
	return "f" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestDeepRecursionOverflowsRAS(t *testing.T) {
	shallowStats := New(DefaultConfig(), deepRecursion(8)).Run()
	deepStats := New(DefaultConfig(), deepRecursion(24)).Run()
	// 24 levels exceed the 16-entry RAS: the outer returns mispredict
	// every outer iteration. 8 levels fit: few mispredicts.
	if shallowStats.Mispredicts > 10 {
		t.Errorf("shallow recursion mispredicted %d times", shallowStats.Mispredicts)
	}
	if deepStats.Mispredicts < 100 {
		t.Errorf("deep recursion mispredicted only %d times; RAS overflow not modeled",
			deepStats.Mispredicts)
	}
	// Correctness is unaffected.
	if want := emu.Run(deepRecursion(24)); deepStats.Committed != want {
		t.Errorf("deep recursion committed %d, want %d", deepStats.Committed, want)
	}
}

func TestReturnMispredictsCarryFLMB(t *testing.T) {
	p := deepRecursion(24)
	cpu := New(DefaultConfig(), p)
	col := newCollector(p)
	cpu.Attach(col)
	cpu.Run()
	flmbRets := 0
	for _, u := range col.committed {
		if col.op(u) == isa.OpRet && u.PSV.Has(events.FLMB) {
			flmbRets++
		}
	}
	if flmbRets == 0 {
		t.Errorf("no FL-MB on mispredicted returns")
	}
}

func TestFunctionGranularityWithRealCalls(t *testing.T) {
	p := callProgram(400)
	if fn := p.FuncOf(0); fn != "main" {
		t.Errorf("index 0 in %q", fn)
	}
	// leaf is a separate function in the symbol table.
	found := false
	for _, f := range p.Funcs {
		if f.Name == "leaf" {
			found = true
		}
	}
	if !found {
		t.Fatalf("leaf function missing from symbol table")
	}
}
