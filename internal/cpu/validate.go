package cpu

import (
	"errors"
	"fmt"
)

// Validate checks the configuration for values the pipeline model
// cannot operate with; New panics later on some of these, so production
// callers validate first.
func (c *Config) Validate() error {
	var errs []error
	pos := func(name string, v int) {
		if v <= 0 {
			errs = append(errs, fmt.Errorf("cpu: %s must be positive, got %d", name, v))
		}
	}
	pos("FetchWidth", c.FetchWidth)
	pos("FetchBufEntries", c.FetchBufEntries)
	pos("DecodeWidth", c.DecodeWidth)
	pos("ROBEntries", c.ROBEntries)
	pos("CommitWidth", c.CommitWidth)
	pos("IntIQEntries", c.IntIQEntries)
	pos("IntIssueWidth", c.IntIssueWidth)
	pos("MemIQEntries", c.MemIQEntries)
	pos("MemIssueWidth", c.MemIssueWidth)
	pos("FPIQEntries", c.FPIQEntries)
	pos("FPIssueWidth", c.FPIssueWidth)
	pos("LQEntries", c.LQEntries)
	pos("SQEntries", c.SQEntries)
	if c.CommitWidth > c.ROBEntries {
		errs = append(errs, fmt.Errorf("cpu: CommitWidth %d exceeds ROBEntries %d", c.CommitWidth, c.ROBEntries))
	}
	if c.ALULatency == 0 || c.BranchLatency == 0 {
		errs = append(errs, errors.New("cpu: ALU and branch latencies must be at least one cycle"))
	}
	if err := validateMem(c); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func validateMem(c *Config) error {
	var errs []error
	for _, cc := range []struct {
		name      string
		size      int
		ways      int
		lineBytes int
		mshrs     int
	}{
		{"L1I", c.Mem.L1I.SizeBytes, c.Mem.L1I.Ways, c.Mem.L1I.LineBytes, c.Mem.L1I.MSHRs},
		{"L1D", c.Mem.L1D.SizeBytes, c.Mem.L1D.Ways, c.Mem.L1D.LineBytes, c.Mem.L1D.MSHRs},
		{"LLC", c.Mem.LLC.SizeBytes, c.Mem.LLC.Ways, c.Mem.LLC.LineBytes, c.Mem.LLC.MSHRs},
	} {
		if cc.ways <= 0 || cc.lineBytes <= 0 || cc.size <= 0 || cc.mshrs <= 0 {
			errs = append(errs, fmt.Errorf("cpu: %s geometry fields must be positive", cc.name))
			continue
		}
		sets := cc.size / (cc.ways * cc.lineBytes)
		if sets <= 0 || sets&(sets-1) != 0 {
			errs = append(errs, fmt.Errorf("cpu: %s set count %d is not a positive power of two", cc.name, sets))
		}
		if cc.lineBytes&(cc.lineBytes-1) != 0 {
			errs = append(errs, fmt.Errorf("cpu: %s line size %d is not a power of two", cc.name, cc.lineBytes))
		}
	}
	if c.Mem.DRAM.CyclesPerLine == 0 {
		errs = append(errs, errors.New("cpu: DRAM CyclesPerLine must be positive"))
	}
	for _, tc := range []struct {
		name    string
		entries int
		ways    int
	}{
		{"ITLB", c.Mem.ITLB.Entries, c.Mem.ITLB.Ways},
		{"DTLB", c.Mem.DTLB.Entries, c.Mem.DTLB.Ways},
		{"L2TLB", c.Mem.Walker.L2.Entries, c.Mem.Walker.L2.Ways},
	} {
		ways := tc.ways
		if ways == 0 {
			ways = tc.entries
		}
		if tc.entries <= 0 || ways <= 0 || tc.entries%ways != 0 {
			errs = append(errs, fmt.Errorf("cpu: %s geometry invalid (%d entries, %d ways)", tc.name, tc.entries, tc.ways))
			continue
		}
		sets := tc.entries / ways
		if sets&(sets-1) != 0 {
			errs = append(errs, fmt.Errorf("cpu: %s set count %d is not a power of two", tc.name, sets))
		}
	}
	return errors.Join(errs...)
}
