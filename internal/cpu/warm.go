// Functional warming: the checkpoint-generation pass's model of the
// durable front-end state the cycle core would have accumulated by a
// given commit boundary. The Warmer replays fetchStage's *state
// updates* — I-cache/I-TLB touches with line dedup and next-line
// prefetch, predictor lookups and updates, RAS pushes/pops, BTB
// installs — plus the data-side cache/TLB touches of loads, stores,
// and prefetches, all in program order, without any timing.
//
// This is an approximation, and a deliberate one. The cycle core
// touches the data cache in issue order (out-of-order within the
// instruction window), drains stores post-commit, and re-touches
// structures when a serializing flush or memory-ordering squash causes
// a refetch; the Warmer does everything exactly once in program order.
// The discrepancies are bounded by the instruction window and decay
// under the cycle-accurate warmup window each parallel segment runs
// before recording — and the segment fingerprint chain (capture layer)
// verifies convergence before stitched bytes are trusted.
package cpu

import (
	"repro/internal/branch"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Warmer accumulates durable microarchitectural state by observing the
// functional instruction stream in program order.
type Warmer struct {
	cfg      Config
	hier     *mem.Hierarchy
	bp       *branch.Predictor
	ras      []int
	btb      []uint64
	lastLine uint64
	shift    uint
}

// NewWarmer builds a warmer for the given core configuration, starting
// from cold structures (the same reset state a fresh core has).
func NewWarmer(cfg Config) *Warmer {
	w := &Warmer{
		cfg:      cfg,
		hier:     mem.NewHierarchy(cfg.Mem),
		bp:       branch.New(cfg.BP),
		lastLine: invalidLine,
		shift:    6,
	}
	for lb := cfg.Mem.L1I.LineBytes; lb > 64; lb >>= 1 {
		w.shift++
	}
	return w
}

// Observe feeds one committed-path instruction to the warmer. It must
// be called in program order for every instruction from reset (or from
// the previous Observe) to the checkpoint boundary.
func (w *Warmer) Observe(d *emu.Inst) {
	// I-side: fetchStage touches the hierarchy once per new I-line.
	if line := d.PC >> w.shift; line != w.lastLine {
		w.hier.WarmFetch(d.PC)
		w.lastLine = line
	}

	op := d.Static.Op
	mispredicted := false
	switch {
	case isa.IsCondBranch(op):
		pred, prov := w.bp.Predict(d.PC)
		w.bp.Update(d.PC, prov, pred, d.Taken)
		mispredicted = pred != d.Taken
	case op == isa.OpCall:
		if len(w.ras) >= rasEntries {
			copy(w.ras, w.ras[1:])
			w.ras = w.ras[:rasEntries-1]
		}
		w.ras = append(w.ras, d.Index+1)
	case op == isa.OpRet:
		predicted := -1
		if n := len(w.ras); n > 0 {
			predicted = w.ras[n-1]
			w.ras = w.ras[:n-1]
		}
		mispredicted = predicted != d.NextIndex
	}

	switch {
	case mispredicted:
		// The front-end redirects after the branch resolves; the line
		// dedup register is invalidated, and — as in fetchStage, which
		// stalls before its BTB block on a mispredict — no BTB install
		// happens.
		w.lastLine = invalidLine
	case d.Taken && isa.IsBranch(op):
		// Correctly-predicted taken branch: ends the fetch packet and
		// installs its BTB entry (returns are served by the RAS).
		w.lastLine = invalidLine
		if op != isa.OpRet && w.cfg.BTBEntries > 0 {
			if w.btb == nil {
				w.btb = make([]uint64, w.cfg.BTBEntries)
			}
			idx := (d.PC >> 2) % uint64(len(w.btb))
			if w.btb[idx] != d.PC {
				w.btb[idx] = d.PC
			}
		}
	}

	// A serializing µop flushes the pipeline at commit: the fetched-ahead
	// window is squashed, the stream rewinds, and the line-dedup register
	// is invalidated, so the next instruction re-touches its I-line even
	// when it shares the serializing µop's line.
	if isa.IsSerializing(op) {
		w.lastLine = invalidLine
	}

	// D-side: loads and stores touch the D-TLB and D-cache (stores via
	// their post-commit drain write); software prefetches fill the LLC
	// only.
	switch {
	case isa.IsLoad(op):
		w.hier.WarmData(d.MemAddr, false)
	case isa.IsStore(op):
		w.hier.WarmData(d.MemAddr, true)
	case op == isa.OpPrefetch:
		w.hier.WarmPrefetch(d.MemAddr)
	}
}

// Snapshot packages the warmed state with the given architectural
// state into a restorable checkpoint. The warmer remains usable; the
// snapshot deep-copies everything it shares.
func (w *Warmer) Snapshot(arch emu.ArchState) *Snapshot {
	snap := &Snapshot{
		Arch:     arch,
		Hier:     w.hier.State(),
		Pred:     w.bp.State(),
		RAS:      append([]int(nil), w.ras...),
		LastLine: w.lastLine,
	}
	if w.btb != nil {
		snap.BTB = append([]uint64(nil), w.btb...)
	}
	return snap
}
