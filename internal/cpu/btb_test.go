package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// btbThrash builds a loop jumping through more distinct taken branches
// than the BTB holds.
func btbThrash(branches, iters int) *program.Program {
	b := program.NewBuilder("btb")
	b.Func("main")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), int64(iters))
	b.Label("top")
	// A chain of unconditional jumps, each a distinct static branch;
	// spacing them in the address space avoids aliasing artifacts.
	for i := 0; i < branches; i++ {
		b.Jmp(jl(i))
		b.Label(jl(i))
		b.Nop()
		b.Nop()
	}
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "top")
	b.Halt()
	return b.MustBuild()
}

func jl(i int) string {
	return "j" + string(rune('A'+i/26)) + string(rune('a'+i%26))
}

func TestBTBMissesOnLargeBranchFootprint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 64
	stats := New(cfg, btbThrash(64, 60)).Run()
	// 64 jumps indexed into a 64-entry direct-mapped BTB at 12-byte
	// spacing: systematic conflicts force recurring resteers.
	if stats.BTBMisses < 100 {
		t.Errorf("only %d BTB misses with a thrashing branch footprint", stats.BTBMisses)
	}
}

func TestBTBHitsOnSmallLoop(t *testing.T) {
	stats := New(DefaultConfig(), btbThrash(4, 200)).Run()
	// 5 distinct taken branches in a 512-entry BTB: only cold misses.
	if stats.BTBMisses > 10 {
		t.Errorf("%d BTB misses for a tiny resident loop", stats.BTBMisses)
	}
}

func TestBTBResteerCostsCycles(t *testing.T) {
	small := DefaultConfig()
	small.BTBEntries = 32
	large := DefaultConfig()
	large.BTBEntries = 1 << 14
	p := func() *program.Program { return btbThrash(48, 150) }
	slow := New(small, p()).Run()
	fast := New(large, p()).Run()
	if slow.BTBMisses <= fast.BTBMisses {
		t.Fatalf("BTB sizing had no effect: %d vs %d misses", slow.BTBMisses, fast.BTBMisses)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("BTB misses cost nothing: %d vs %d cycles", slow.Cycles, fast.Cycles)
	}
}

func TestBTBDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 0
	stats := New(cfg, btbThrash(16, 50)).Run()
	if stats.BTBMisses != 0 {
		t.Errorf("disabled BTB recorded %d misses", stats.BTBMisses)
	}
}
