// Checkpoint support: the quiescent-state snapshot and the Restore
// path that reconstructs a core mid-run from one.
//
// A Snapshot is taken at a *quiescent commit boundary*: every fetched
// instruction has committed, the pipeline is empty, no fill or drain
// is in flight. The checkpoint-generation pass (internal/checkpoint)
// reaches such boundaries trivially because it is functional — it has
// no pipeline at all — and commits instructions one at a time in
// program order. The quiescing rule is therefore structural: a
// snapshot carries architectural state (registers, PC, sequence
// number; the memory image travels separately as dirty-word deltas)
// plus the durable microarchitectural state that survives across a
// pipeline drain — cache and TLB contents, predictor tables, BTB, RAS,
// and the fetch stage's line-dedup register. Everything transient
// (ROB, queues, MSHRs, timestamps) is empty or zero by construction
// and is re-established by the warmup window before any trace bytes
// are recorded.
package cpu

import (
	"repro/internal/branch"
	"repro/internal/emu"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/simerr"
)

// Snapshot is the serializable state of a core at a quiescent commit
// boundary. See the file comment for what is — and deliberately is
// not — included.
type Snapshot struct {
	// Arch is the architectural register state of the functional
	// stream at the boundary.
	Arch emu.ArchState
	// Hier is the durable memory-hierarchy state.
	Hier mem.HierarchyState
	// Pred is the branch-predictor state.
	Pred branch.PredictorState
	// BTB is the branch target buffer contents (nil when the core has
	// not allocated one — equivalent to all-zero entries).
	BTB []uint64
	// RAS is the return-address stack, bottom first.
	RAS []int
	// LastLine is the fetch stage's line-dedup register (the I-line of
	// the most recently fetched instruction, or ^0 after a redirect).
	LastLine uint64
}

// Restore reconstructs a core mid-run from a snapshot: the functional
// stream resumes at the snapshot's architectural state over the given
// memory image (which the caller must have reconstructed to match the
// boundary — base image plus dirty-word deltas), and the durable
// microarchitectural state is installed. The returned core is
// quiescent: cycle 0, empty pipeline, ready to Step.
func Restore(cfg Config, p *program.Program, img *emu.Memory, snap *Snapshot) (*CPU, error) {
	c := &CPU{
		cfg:                  cfg,
		prog:                 p,
		stream:               emu.NewStreamAt(p, img, snap.Arch),
		hier:                 mem.NewHierarchy(cfg.Mem),
		bp:                   branch.New(cfg.BP),
		rob:                  newROB(cfg.ROBEntries),
		lastLine:             snap.LastLine,
		MaxCycles:            cfg.MaxCycles,
		WatchdogCommitCycles: cfg.WatchdogCommitCycles,
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	if c.WatchdogCommitCycles == 0 {
		c.WatchdogCommitCycles = DefaultWatchdogCommitCycles
	}
	if err := c.hier.SetState(snap.Hier); err != nil {
		return nil, err
	}
	if err := c.bp.SetState(snap.Pred); err != nil {
		return nil, err
	}
	if snap.BTB != nil {
		if cfg.BTBEntries != len(snap.BTB) {
			return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{Program: p.Name},
				"cpu: snapshot BTB has %d entries, config wants %d", len(snap.BTB), cfg.BTBEntries)
		}
		c.btb = append([]uint64(nil), snap.BTB...)
	}
	if len(snap.RAS) > rasEntries {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{Program: p.Name},
			"cpu: snapshot RAS has %d entries, maximum is %d", len(snap.RAS), rasEntries)
	}
	c.ras = append([]int(nil), snap.RAS...)
	return c, nil
}

// Sub returns the field-wise difference s - prev. Every Stats field is
// a monotone counter, so the difference of two observations of one run
// is the activity between them — the basis for reconstructing a serial
// run's statistics as the sum of per-segment deltas.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Cycles:      s.Cycles - prev.Cycles,
		Committed:   s.Committed - prev.Committed,
		Mispredicts: s.Mispredicts - prev.Mispredicts,
		BTBMisses:   s.BTBMisses - prev.BTBMisses,
		Violations:  s.Violations - prev.Violations,
		Squashed:    s.Squashed - prev.Squashed,
		Flushes:     s.Flushes - prev.Flushes,
	}
	for i := range s.StateCycles {
		d.StateCycles[i] = s.StateCycles[i] - prev.StateCycles[i]
	}
	return d
}

// Add accumulates a delta produced by Sub into s.
func (s *Stats) Add(d Stats) {
	s.Cycles += d.Cycles
	s.Committed += d.Committed
	s.Mispredicts += d.Mispredicts
	s.BTBMisses += d.BTBMisses
	s.Violations += d.Violations
	s.Squashed += d.Squashed
	s.Flushes += d.Flushes
	for i := range s.StateCycles {
		s.StateCycles[i] += d.StateCycles[i]
	}
}
