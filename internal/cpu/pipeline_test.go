package cpu

import (
	"math/rand/v2"
	"testing"

	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

func TestCommitWidthBoundsThroughput(t *testing.T) {
	// n independent single-cycle ops cannot commit faster than the
	// commit width allows.
	p := straightALU(2000)
	cpu := New(DefaultConfig(), p)
	stats := cpu.Run()
	minCycles := uint64(2000 / DefaultConfig().CommitWidth)
	if stats.Cycles < minCycles {
		t.Errorf("%d insts committed in %d cycles; commit width %d violated",
			stats.Committed, stats.Cycles, DefaultConfig().CommitWidth)
	}
}

func TestROBCapacityBoundsInFlight(t *testing.T) {
	// A long-latency head op with many independents behind it: the
	// number of in-flight (dispatched, uncommitted) µops must never
	// exceed the ROB size.
	// A warm loop (so fetch keeps pace) whose leading load misses to
	// DRAM every iteration while hundreds of independents pile up.
	b := program.NewBuilder("robcap")
	base := b.Alloc(64<<20, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(11), 0)
	b.Movi(isa.X(12), 20)
	b.Label("top")
	b.Load(isa.X(2), isa.X(1), 0) // DRAM-deep miss at the head
	for i := 0; i < 300; i++ {
		b.Addi(isa.X(3+i%8), isa.X(0), 1)
	}
	b.Addi(isa.X(1), isa.X(1), 1<<20)
	b.Addi(isa.X(11), isa.X(11), 1)
	b.Blt(isa.X(11), isa.X(12), "top")
	b.Halt()
	p := b.MustBuild()
	cpu := New(DefaultConfig(), p)
	probe := &inFlightProbe{}
	cpu.Attach(probe)
	cpu.Run()
	if probe.maxInFlight > DefaultConfig().ROBEntries {
		t.Errorf("max in-flight µops %d exceeds ROB size %d",
			probe.maxInFlight, DefaultConfig().ROBEntries)
	}
	// And the ROB must actually fill behind the stalled load.
	if probe.maxInFlight < DefaultConfig().ROBEntries/2 {
		t.Errorf("ROB only reached %d entries behind a long stall", probe.maxInFlight)
	}
}

type inFlightProbe struct {
	BaseProbe
	dispatched  map[uint64]bool
	inFlight    int
	maxInFlight int
}

func (p *inFlightProbe) OnDispatch(r Ref, cy uint64) {
	if p.dispatched == nil {
		p.dispatched = map[uint64]bool{}
	}
	p.dispatched[r.Seq] = true
	p.inFlight++
	if p.inFlight > p.maxInFlight {
		p.maxInFlight = p.inFlight
	}
}
func (p *inFlightProbe) OnCommit(r Ref, cy uint64) {
	delete(p.dispatched, r.Seq)
	p.inFlight--
}
func (p *inFlightProbe) OnSquash(r Ref, cy uint64) {
	if p.dispatched[r.Seq] {
		delete(p.dispatched, r.Seq)
		p.inFlight--
	}
}

func TestUnpipelinedDividerSerializes(t *testing.T) {
	// Independent divides share one unpipelined unit: n divides take at
	// least n * DivLatency cycles.
	cfg := DefaultConfig()
	b := program.NewBuilder("div")
	b.Func("main")
	b.Movi(isa.X(1), 1000)
	b.Movi(isa.X(2), 3)
	const n = 30
	for i := 0; i < n; i++ {
		b.Div(isa.X(3+i%8), isa.X(1), isa.X(2)) // independent of each other
	}
	b.Halt()
	stats := New(cfg, b.MustBuild()).Run()
	if stats.Cycles < n*cfg.DivLatency {
		t.Errorf("%d independent divides finished in %d cycles; unpipelined unit (lat %d) violated",
			n, stats.Cycles, cfg.DivLatency)
	}
}

func TestPipelinedFPOverlaps(t *testing.T) {
	// Independent FP adds are pipelined: throughput is bounded by the
	// FP issue width, not the FP latency. A warm loop keeps instruction
	// fetch out of the picture.
	cfg := DefaultConfig()
	b := program.NewBuilder("fp")
	b.Func("main")
	b.Movi(isa.X(1), 2)
	b.FMovI(isa.F(1), isa.X(1))
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 100)
	b.Label("top")
	for i := 0; i < 8; i++ {
		b.FAdd(isa.F(2+i), isa.F(1), isa.F(1))
	}
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "top")
	b.Halt()
	stats := New(cfg, b.MustBuild()).Run()
	// 800 FP adds: unpipelined at FPLatency=4 would exceed 3200 cycles;
	// dual-issue pipelined should land well under half of that.
	if stats.Cycles > 1500 {
		t.Errorf("800 independent FP adds took %d cycles; FP pipeline not overlapping", stats.Cycles)
	}
}

func TestForwardingFasterThanCacheMiss(t *testing.T) {
	// A load forwarding from an in-flight store completes in a couple of
	// cycles; the same load going to a cold cache takes >100.
	mk := func(forward bool) uint64 {
		b := program.NewBuilder("fwd")
		base := b.Alloc(16<<20, 4096)
		b.Func("main")
		b.MoviU(isa.X(1), base)
		b.Movi(isa.X(2), 7)
		if forward {
			b.Store(isa.X(1), isa.X(2), 0)
		}
		b.Load(isa.X(3), isa.X(1), 0)
		b.Add(isa.X(4), isa.X(3), isa.X(3))
		b.Halt()
		return New(DefaultConfig(), b.MustBuild()).Run().Cycles
	}
	withFwd, withoutFwd := mk(true), mk(false)
	if withFwd >= withoutFwd {
		t.Errorf("forwarding run (%d cycles) not faster than cold-miss run (%d)", withFwd, withoutFwd)
	}
}

func TestRedirectPenaltyVisible(t *testing.T) {
	// Compare a predictable loop against the same loop with an
	// unpredictable extra branch: the mispredicting version must pay
	// per-iteration redirect penalties.
	mk := func(unpredictable bool) (uint64, uint64) {
		b := program.NewBuilder("redir")
		b.Func("main")
		b.Movi(isa.X(1), 0)
		b.Movi(isa.X(2), 1000)
		b.Movi(isa.X(4), 88172)
		b.Label("top")
		b.Shli(isa.X(5), isa.X(4), 13)
		b.Xor(isa.X(4), isa.X(4), isa.X(5))
		b.Shri(isa.X(5), isa.X(4), 7)
		b.Xor(isa.X(4), isa.X(4), isa.X(5))
		if unpredictable {
			b.Andi(isa.X(5), isa.X(4), 1)
			b.Beq(isa.X(5), isa.X(0), "skip")
			b.Nop()
			b.Label("skip")
		} else {
			b.Andi(isa.X(5), isa.X(4), 1)
			b.Nop()
		}
		b.Addi(isa.X(1), isa.X(1), 1)
		b.Blt(isa.X(1), isa.X(2), "top")
		b.Halt()
		st := New(DefaultConfig(), b.MustBuild()).Run()
		return st.Cycles, st.Mispredicts
	}
	slowCycles, mispredicts := mk(true)
	fastCycles, _ := mk(false)
	if mispredicts < 300 {
		t.Fatalf("only %d mispredicts", mispredicts)
	}
	perMiss := float64(slowCycles-fastCycles) / float64(mispredicts)
	if perMiss < 3 {
		t.Errorf("mispredict costs %.1f cycles each, redirect penalty invisible", perMiss)
	}
}

func TestWarmTLBNoEvents(t *testing.T) {
	// Repeated loads within one page: only the first sees ST-TLB.
	b := program.NewBuilder("tlb")
	base := b.Alloc(4096, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Load(isa.X(2), isa.X(1), 0) // cold: TLB miss
	b.Add(isa.X(5), isa.X(1), isa.X(2))
	for i := int64(1); i <= 10; i++ {
		b.Load(isa.X(3), isa.X(5), i*64)
		b.Add(isa.X(5), isa.X(1), isa.X(3))
	}
	b.Halt()
	p := b.MustBuild()
	cpu := New(DefaultConfig(), p)
	col := newCollector(p)
	cpu.Attach(col)
	cpu.Run()
	tlbMisses := 0
	for _, u := range col.committed {
		if u.PSV.Has(events.STTLB) {
			tlbMisses++
		}
	}
	if tlbMisses != 1 {
		t.Errorf("%d ST-TLB events for same-page loads, want exactly 1", tlbMisses)
	}
}

func TestPrefetchWarmsLLCOnly(t *testing.T) {
	// A software prefetch followed (much later) by a load: the load
	// should miss L1 but hit the LLC (ST-L1 without ST-LLC).
	b := program.NewBuilder("pf")
	base := b.Alloc(16<<20, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Prefetch(isa.X(1), 0)
	// Delay: the load's address depends on a divide chain, so it cannot
	// issue until long after the prefetch completed.
	b.Movi(isa.X(2), 1<<20)
	b.Movi(isa.X(3), 2)
	for i := 0; i < 12; i++ {
		b.Div(isa.X(2), isa.X(2), isa.X(3)) // ends at 256
	}
	b.Addi(isa.X(4), isa.X(2), -256)
	b.Add(isa.X(4), isa.X(1), isa.X(4)) // x4 = base, available late
	b.Load(isa.X(5), isa.X(4), 0)
	b.Add(isa.X(6), isa.X(5), isa.X(5))
	b.Halt()
	p := b.MustBuild()
	cpu := New(DefaultConfig(), p)
	col := newCollector(p)
	cpu.Attach(col)
	cpu.Run()
	var ld Ref
	found := false
	for _, u := range col.committed {
		if isa.IsLoad(col.op(u)) {
			ld = u
			found = true
		}
	}
	if !found {
		t.Fatalf("no load committed")
	}
	if !ld.PSV.Has(events.STL1) {
		t.Errorf("prefetched-line load should still miss L1 (prefetch fills LLC only): %v", ld.PSV)
	}
	if ld.PSV.Has(events.STLLC) {
		t.Errorf("prefetched-line load should hit the LLC: %v", ld.PSV)
	}
}

func TestSerializingWaitsForROBDrain(t *testing.T) {
	// csrflush must not commit before every older µop has committed.
	b := program.NewBuilder("ser")
	b.Func("main")
	b.Movi(isa.X(1), 1000)
	b.Movi(isa.X(2), 3)
	b.Div(isa.X(3), isa.X(1), isa.X(2)) // slow op before the flush
	b.CsrFlush()
	b.Addi(isa.X(4), isa.X(0), 1)
	b.Halt()
	p := b.MustBuild()
	cpu := New(DefaultConfig(), p)
	col := newCollector(p)
	cpu.Attach(col)
	cpu.Run()
	var divCommit, csrCommit, csrDispatch uint64
	for _, u := range col.committed {
		switch col.op(u) {
		case isa.OpDiv:
			divCommit = col.commitAt[u.Seq]
		case isa.OpCsrFlush:
			csrCommit = col.commitAt[u.Seq]
			csrDispatch = col.dispatchAt[u.Seq]
		}
	}
	// The commit stage runs before dispatch within a cycle, so the
	// earliest legal dispatch is the divide's commit cycle itself.
	if csrDispatch < divCommit {
		t.Errorf("csrflush dispatched at %d before the divide committed at %d", csrDispatch, divCommit)
	}
	if csrCommit <= divCommit {
		t.Errorf("csrflush committed at %d, not after the divide at %d", csrCommit, divCommit)
	}
}

func TestL2TLBReducesWalkCost(t *testing.T) {
	// Touch 64 pages (beyond the 32-entry L1 D-TLB), then touch them
	// again: the second pass should hit the L2 TLB, not walk.
	b := program.NewBuilder("l2tlb")
	base := b.Alloc(64*4096+4096, 4096)
	b.Func("main")
	for pass := 0; pass < 2; pass++ {
		b.MoviU(isa.X(1), base)
		b.Movi(isa.X(2), 0)
		b.Movi(isa.X(3), 64)
		b.Label("p" + string(rune('0'+pass)))
		b.Load(isa.X(4), isa.X(1), 0)
		b.Addi(isa.X(1), isa.X(1), 4096)
		b.Addi(isa.X(2), isa.X(2), 1)
		b.Blt(isa.X(2), isa.X(3), "p"+string(rune('0'+pass)))
	}
	b.Halt()
	cpu := New(DefaultConfig(), b.MustBuild())
	cpu.Run()
	walker := cpu.Hierarchy().Walker()
	// First pass: 64 walks (cold L2). Second pass: L2 hits, no walks.
	if walker.Walks > 70 {
		t.Errorf("%d page walks; L2 TLB not retaining translations", walker.Walks)
	}
	if walker.L2().Accesses < 120 {
		t.Errorf("L2 TLB consulted only %d times, want both passes' misses", walker.L2().Accesses)
	}
}

// TestRandomProgramsCommitFunctionalCount is a property test: for
// arbitrary straight-line-plus-forward-branch programs, the timing
// model commits exactly the dynamic instructions the functional
// emulator executes, and every run terminates.
func TestRandomProgramsCommitFunctionalCount(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 17))
		p := randomProgram(rng)
		want := emu.Run(p)
		got := New(DefaultConfig(), p).Run().Committed
		if got != want {
			t.Fatalf("trial %d: committed %d, functional %d\n%s", trial, got, want, p.Disassemble())
		}
	}
}

func randomProgram(rng *rand.Rand) *program.Program {
	b := program.NewBuilder("rand")
	base := b.Alloc(1<<16, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	n := 20 + rng.IntN(120)
	labels := 0
	for i := 0; i < n; i++ {
		switch rng.IntN(8) {
		case 0:
			b.Addi(isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)), int64(rng.IntN(100)))
		case 1:
			b.Mul(isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)))
		case 2:
			b.Load(isa.X(2+rng.IntN(6)), isa.X(1), int64(rng.IntN(8000))&^7)
		case 3:
			b.Store(isa.X(1), isa.X(2+rng.IntN(6)), int64(rng.IntN(8000))&^7)
		case 4:
			// Forward branch: always terminates.
			lbl := labelName(labels)
			labels++
			b.Beq(isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)), lbl)
			b.Addi(isa.X(7), isa.X(7), 1)
			b.Label(lbl)
			b.Nop()
		case 5:
			b.Xor(isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)))
		case 6:
			b.Div(isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)), isa.X(2+rng.IntN(6)))
		default:
			b.Nop()
		}
	}
	b.Halt()
	return b.MustBuild()
}

func labelName(i int) string {
	return "L" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestEmptyProgramJustHalt(t *testing.T) {
	b := program.NewBuilder("empty")
	b.Func("main")
	b.Halt()
	stats := New(DefaultConfig(), b.MustBuild()).Run()
	if stats.Committed != 1 {
		t.Errorf("committed %d, want 1 (the halt)", stats.Committed)
	}
	if stats.Cycles == 0 || stats.Cycles > 1000 {
		t.Errorf("empty program took %d cycles", stats.Cycles)
	}
}

func TestFetchBufferNeverOverflows(t *testing.T) {
	p := straightALU(3000)
	cpu := New(DefaultConfig(), p)
	probe := &fetchBufProbe{cpu: cpu}
	cpu.Attach(probe)
	cpu.Run()
	if probe.max > DefaultConfig().FetchBufEntries {
		t.Errorf("fetch buffer reached %d entries, cap %d", probe.max, DefaultConfig().FetchBufEntries)
	}
}

type fetchBufProbe struct {
	BaseProbe
	cpu *CPU
	max int
}

func (p *fetchBufProbe) OnCycle(ci *CycleInfo) {
	if n := len(p.cpu.fetchBuf); n > p.max {
		p.max = n
	}
}
