package cpu

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

// collector records every probe callback for inspection. Probes receive
// value-typed Refs (the core recycles µops), so events are stored by
// value and cycle maps are keyed by sequence number.
type collector struct {
	BaseProbe
	prog       *program.Program
	fetched    []Ref
	dispatched []Ref
	committed  []Ref
	squashed   []Ref
	fetchAt    map[uint64]uint64 // seq -> cycle
	dispatchAt map[uint64]uint64
	commitAt   map[uint64]uint64
	states     map[events.CommitState]uint64
	done       uint64
}

func newCollector(p *program.Program) *collector {
	return &collector{
		prog:       p,
		fetchAt:    map[uint64]uint64{},
		dispatchAt: map[uint64]uint64{},
		commitAt:   map[uint64]uint64{},
		states:     map[events.CommitState]uint64{},
	}
}

// op resolves the static opcode behind a ref via the program.
func (c *collector) op(r Ref) isa.Op { return c.prog.Insts[isa.IndexOf(r.PC)].Op }

func (c *collector) OnCycle(ci *CycleInfo) { c.states[ci.State]++ }
func (c *collector) OnFetch(r Ref, cy uint64) {
	c.fetched = append(c.fetched, r)
	c.fetchAt[r.Seq] = cy
}
func (c *collector) OnDispatch(r Ref, cy uint64) {
	c.dispatched = append(c.dispatched, r)
	c.dispatchAt[r.Seq] = cy
}
func (c *collector) OnCommit(r Ref, cy uint64) {
	c.committed = append(c.committed, r)
	c.commitAt[r.Seq] = cy
}
func (c *collector) OnSquash(r Ref, cy uint64) { c.squashed = append(c.squashed, r) }
func (c *collector) OnDone(total uint64)       { c.done = total }

func run(t *testing.T, p *program.Program) (*Stats, *collector) {
	t.Helper()
	cpu := New(DefaultConfig(), p)
	col := newCollector(p)
	cpu.Attach(col)
	stats := cpu.Run()
	return stats, col
}

func straightALU(n int) *program.Program {
	b := program.NewBuilder("alu")
	b.Func("main")
	for i := 0; i < n; i++ {
		b.Addi(isa.X(1+i%8), isa.X(0), int64(i))
	}
	b.Halt()
	return b.MustBuild()
}

func TestHotLoopALUIPC(t *testing.T) {
	// A resident loop of independent ALU ops: after the cold first
	// iteration the core must sustain an IPC near the 4-wide commit.
	b := program.NewBuilder("hotloop")
	b.Func("main")
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 100)
	b.Label("top")
	for i := 0; i < 400; i++ {
		b.Addi(isa.X(1+i%8), isa.X(0), int64(i))
	}
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	p := b.MustBuild()
	stats, col := run(t, p)
	if ipc := stats.IPC(); ipc < 3.0 {
		t.Errorf("hot ALU loop IPC = %v, want near commit width 4", ipc)
	}
	if col.done != stats.Cycles {
		t.Errorf("OnDone cycles %d != stats %d", col.done, stats.Cycles)
	}
}

func TestCommitCountMatchesFunctionalRun(t *testing.T) {
	b := program.NewBuilder("loop")
	b.Func("main")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), 500)
	b.Label("top")
	b.Addi(isa.X(3), isa.X(1), 7)
	b.Mul(isa.X(4), isa.X(3), isa.X(3))
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "top")
	b.Halt()
	p := b.MustBuild()
	want := emu.Run(p)
	stats, col := run(t, p)
	if stats.Committed != want {
		t.Fatalf("committed %d, functional count %d", stats.Committed, want)
	}
	if uint64(len(col.committed)) != want {
		t.Errorf("OnCommit fired %d times, want %d", len(col.committed), want)
	}
}

func TestDependentChainStalls(t *testing.T) {
	// A chain of dependent integer divides: the core must spend most
	// cycles in the Stalled state waiting for the head.
	b := program.NewBuilder("chain")
	b.Func("main")
	b.Movi(isa.X(1), 1000)
	b.Movi(isa.X(2), 3)
	for i := 0; i < 50; i++ {
		b.Div(isa.X(1), isa.X(1), isa.X(2))
		b.Addi(isa.X(1), isa.X(1), 1000)
	}
	b.Halt()
	stats, col := run(t, b.MustBuild())
	if col.states[events.Stalled] < stats.Cycles/3 {
		t.Errorf("dependent divide chain spent %d/%d cycles stalled, want a large fraction",
			col.states[events.Stalled], stats.Cycles)
	}
}

func TestColdLoadSetsStallEvents(t *testing.T) {
	b := program.NewBuilder("coldload")
	base := b.Alloc(1<<12, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Load(isa.X(2), isa.X(1), 0)
	b.Add(isa.X(3), isa.X(2), isa.X(2))
	b.Halt()
	_, col := run(t, b.MustBuild())
	var ld Ref
	found := false
	for _, u := range col.committed {
		if isa.IsLoad(col.op(u)) {
			ld = u
			found = true
		}
	}
	if !found {
		t.Fatalf("load never committed")
	}
	if !ld.PSV.Has(events.STL1) || !ld.PSV.Has(events.STLLC) {
		t.Errorf("cold load PSV = %v, want ST-L1 and ST-LLC set", ld.PSV)
	}
	if !ld.PSV.Has(events.STTLB) {
		t.Errorf("cold load PSV = %v, want ST-TLB set (cold D-TLB)", ld.PSV)
	}
}

func TestWarmLoadHasNoEvents(t *testing.T) {
	b := program.NewBuilder("warmload")
	base := b.Alloc(64, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Load(isa.X(2), isa.X(1), 0) // cold (loads 0)
	// Warm loads depend on the cold load's value, so they issue only
	// after the fill completed and genuinely hit in the L1.
	b.Add(isa.X(5), isa.X(1), isa.X(2))
	for i := 0; i < 20; i++ {
		b.Load(isa.X(3), isa.X(5), 0) // warm
		b.Add(isa.X(5), isa.X(1), isa.X(3))
	}
	b.Halt()
	_, col := run(t, b.MustBuild())
	warm := 0
	for _, u := range col.committed {
		if isa.IsLoad(col.op(u)) && u.PSV == 0 {
			warm++
		}
	}
	if warm < 20 {
		t.Errorf("only %d warm loads with empty PSV, want 20", warm)
	}
}

func TestMispredictedBranchesFlush(t *testing.T) {
	// A data-dependent unpredictable branch: the direction comes from an
	// xorshift64 generator, which TAGE cannot learn.
	b := program.NewBuilder("branchy")
	b.Func("main")
	b.Movi(isa.X(1), 0)     // i
	b.Movi(isa.X(2), 2000)  // n
	b.Movi(isa.X(4), 88172) // xorshift state
	b.Movi(isa.X(7), 0)     // acc
	b.Label("top")
	b.Shli(isa.X(5), isa.X(4), 13)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Shri(isa.X(5), isa.X(4), 7)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Shli(isa.X(5), isa.X(4), 17)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Andi(isa.X(5), isa.X(4), 1)
	b.Beq(isa.X(5), isa.X(0), "skip")
	b.Addi(isa.X(7), isa.X(7), 1)
	b.Label("skip")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "top")
	b.Halt()
	stats, col := run(t, b.MustBuild())
	if stats.Mispredicts < 200 {
		t.Fatalf("only %d mispredicts on hash-random branches, want many", stats.Mispredicts)
	}
	if col.states[events.Flushed] == 0 {
		t.Errorf("no Flushed cycles despite %d mispredicts", stats.Mispredicts)
	}
	flmb := 0
	for _, u := range col.committed {
		if u.PSV.Has(events.FLMB) {
			flmb++
		}
	}
	if uint64(flmb) != stats.Mispredicts {
		t.Errorf("FL-MB on %d committed µops, stats say %d mispredicts", flmb, stats.Mispredicts)
	}
}

func TestSerializingCsrFlush(t *testing.T) {
	b := program.NewBuilder("csr")
	b.Func("main")
	b.Movi(isa.X(1), 5)
	b.FMovI(isa.F(1), isa.X(1))
	for i := 0; i < 30; i++ {
		b.CsrFlush()
		b.FSqrt(isa.F(2), isa.F(1))
	}
	b.Halt()
	stats, col := run(t, b.MustBuild())
	flex := 0
	for _, u := range col.committed {
		if col.op(u) == isa.OpCsrFlush {
			if !u.PSV.Has(events.FLEX) {
				t.Errorf("csrflush committed without FL-EX")
			}
			flex++
		}
	}
	if flex != 30 {
		t.Fatalf("%d csrflush µops committed, want 30", flex)
	}
	if col.states[events.Flushed] == 0 {
		t.Errorf("no Flushed cycles despite serializing flushes")
	}
	if stats.Flushes < 30 {
		t.Errorf("flush count = %d, want >= 30", stats.Flushes)
	}
}

func TestMemoryOrderingViolation(t *testing.T) {
	// The store's address depends on a slow divide chain while the
	// younger load's address is immediately ready: the load issues
	// first, reads stale data, and the store's address generation must
	// detect the violation.
	b := program.NewBuilder("violate")
	base := b.Alloc(4096, 64)
	b.SetWord(base, 1)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 17)
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 40)
	b.Label("top")
	// Slow address computation: x3 = base after a divide chain.
	b.Movi(isa.X(4), 1600)
	b.Movi(isa.X(5), 2)
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Div(isa.X(4), isa.X(4), isa.X(5)) // 200
	b.Sub(isa.X(3), isa.X(1), isa.X(0))
	b.Add(isa.X(3), isa.X(3), isa.X(4))
	b.Addi(isa.X(3), isa.X(3), -200) // x3 = base, very late
	b.Store(isa.X(3), isa.X(2), 0)   // store base <- 17, address late
	b.Load(isa.X(6), isa.X(1), 0)    // younger load of base: speculates
	b.Add(isa.X(7), isa.X(6), isa.X(6))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	stats, col := run(t, b.MustBuild())
	if stats.Violations == 0 {
		t.Fatalf("no memory ordering violations detected")
	}
	flmo := 0
	for _, u := range col.committed {
		if u.PSV.Has(events.FLMO) {
			flmo++
		}
	}
	if flmo == 0 {
		t.Errorf("no committed µop carries FL-MO")
	}
	if stats.Squashed == 0 {
		t.Errorf("violations should squash younger µops")
	}
	// Every µop must still commit exactly once.
	want := emu.Run(b.MustBuild())
	if stats.Committed != want {
		t.Errorf("committed %d, functional count %d", stats.Committed, want)
	}
}

func TestStoreBandwidthCausesDRSQ(t *testing.T) {
	// Stream stores to distinct lines: the drain rate is DRAM-bound, so
	// the store queue fills with completed-but-not-retired stores and
	// dispatch stalls with DR-SQ.
	b := program.NewBuilder("stores")
	base := b.Alloc(1<<21, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 1500)
	b.Label("top")
	for i := int64(0); i < 4; i++ {
		b.Store(isa.X(1), isa.X(2), i*64)
	}
	b.Addi(isa.X(1), isa.X(1), 256)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "top")
	b.Halt()
	_, col := run(t, b.MustBuild())
	drsq := 0
	for _, u := range col.committed {
		if u.PSV.Has(events.DRSQ) {
			drsq++
		}
	}
	if drsq == 0 {
		t.Errorf("no DR-SQ events in a store-bandwidth-bound stream")
	}
	if col.states[events.Drained] == 0 {
		t.Errorf("no Drained cycles despite store-queue backpressure")
	}
}

func TestLargeCodeFootprintCausesDRL1(t *testing.T) {
	// 40k instructions of straight-line code = 160 KB, five times the
	// 32 KB L1I: instruction fetch must miss.
	b := program.NewBuilder("bigcode")
	b.Func("main")
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 3)
	b.Label("top")
	for i := 0; i < 40000; i++ {
		b.Addi(isa.X(1+i%4), isa.X(0), int64(i&0xFF))
	}
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	_, col := run(t, b.MustBuild())
	drl1 := 0
	for _, u := range col.committed {
		if u.PSV.Has(events.DRL1) {
			drl1++
		}
	}
	if drl1 < 100 {
		t.Errorf("only %d DR-L1 events for a 160KB code loop", drl1)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same word: the load
	// must forward and not access the cache (no ST-L1 despite the line
	// being cold in L1 for the load's access path).
	b := program.NewBuilder("fwd")
	base := b.Alloc(4096, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 99)
	for i := 0; i < 10; i++ {
		b.Store(isa.X(1), isa.X(2), 512)
		b.Load(isa.X(3), isa.X(1), 512)
		b.Add(isa.X(4), isa.X(3), isa.X(3))
	}
	b.Halt()
	stats, col := run(t, b.MustBuild())
	if stats.Violations != 0 {
		t.Errorf("forwarding pattern caused %d violations", stats.Violations)
	}
	// Later loads should forward: quick completion, no cache events.
	fwdLoads := 0
	for _, u := range col.committed {
		if isa.IsLoad(col.op(u)) && !u.PSV.Has(events.STL1) {
			fwdLoads++
		}
	}
	if fwdLoads < 8 {
		t.Errorf("only %d loads avoided cache events; forwarding broken?", fwdLoads)
	}
}

func TestProbeEventOrdering(t *testing.T) {
	p := straightALU(200)
	_, col := run(t, p)
	for _, u := range col.committed {
		f, okF := col.fetchAt[u.Seq]
		d, okD := col.dispatchAt[u.Seq]
		cm, okC := col.commitAt[u.Seq]
		if !okF || !okD || !okC {
			t.Fatalf("committed µop missing fetch/dispatch/commit callbacks")
		}
		if f > d || d > cm {
			t.Errorf("µop seq %d: fetch %d, dispatch %d, commit %d out of order", u.Seq, f, d, cm)
		}
	}
}

func TestSquashedUOpsNeverCommit(t *testing.T) {
	// Reuse the violation program: every fetched µop instance ends in
	// exactly one squash or one commit, and no sequence number commits
	// twice (re-fetched instructions are fresh instances of the same
	// sequence number).
	b := program.NewBuilder("v2")
	base := b.Alloc(4096, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 3)
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 30)
	b.Label("top")
	b.Movi(isa.X(4), 800)
	b.Movi(isa.X(5), 2)
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Add(isa.X(3), isa.X(1), isa.X(4))
	b.Addi(isa.X(3), isa.X(3), -200)
	b.Store(isa.X(3), isa.X(2), 0)
	b.Load(isa.X(6), isa.X(1), 0)
	b.Add(isa.X(7), isa.X(6), isa.X(6))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	_, col := run(t, b.MustBuild())
	if len(col.squashed) == 0 {
		t.Fatalf("program did not squash")
	}
	commits := map[uint64]int{}
	for _, u := range col.committed {
		commits[u.Seq]++
	}
	for seq, n := range commits {
		if n != 1 {
			t.Errorf("seq %d committed %d times", seq, n)
		}
	}
	fetches := map[uint64]int{}
	for _, u := range col.fetched {
		fetches[u.Seq]++
	}
	squashes := map[uint64]int{}
	for _, u := range col.squashed {
		squashes[u.Seq]++
	}
	for seq, n := range fetches {
		if want := squashes[seq] + commits[seq]; n != want {
			t.Errorf("seq %d fetched %d times, want %d (%d squashes + %d commits)",
				seq, n, want, squashes[seq], commits[seq])
		}
	}
}

func TestSampleOverheadAddsCycles(t *testing.T) {
	p := straightALU(2000)
	base := New(DefaultConfig(), p)
	baseStats := base.Run()

	withOvh := New(DefaultConfig(), p)
	withOvh.SampleOverheadCycles = 50
	fire := &overheadProbe{cpu: withOvh, every: 100}
	withOvh.Attach(fire)
	ovhStats := withOvh.Run()
	if ovhStats.Cycles <= baseStats.Cycles {
		t.Errorf("overhead run took %d cycles, baseline %d", ovhStats.Cycles, baseStats.Cycles)
	}
}

type overheadProbe struct {
	BaseProbe
	cpu   *CPU
	every uint64
}

func (o *overheadProbe) OnCycle(ci *CycleInfo) {
	if ci.Cycle%o.every == 0 {
		o.cpu.RequestSampleOverhead()
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Stats {
		b := program.NewBuilder("det")
		base := b.Alloc(1<<16, 64)
		b.Func("main")
		b.MoviU(isa.X(1), base)
		b.Movi(isa.X(2), 0)
		b.Movi(isa.X(3), 300)
		b.Label("top")
		b.Load(isa.X(4), isa.X(1), 0)
		b.Store(isa.X(1), isa.X(4), 8)
		b.Addi(isa.X(1), isa.X(1), 128)
		b.Addi(isa.X(2), isa.X(2), 1)
		b.Blt(isa.X(2), isa.X(3), "top")
		b.Halt()
		cpu := New(DefaultConfig(), b.MustBuild())
		return cpu.Run()
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCommitStatesPartitionCycles(t *testing.T) {
	p := straightALU(1000)
	stats, col := run(t, p)
	var sum uint64
	for _, v := range col.states {
		sum += v
	}
	if sum != stats.Cycles {
		t.Errorf("state cycles sum to %d, total %d", sum, stats.Cycles)
	}
}

func TestDescribeMentionsTable2Values(t *testing.T) {
	cfg := DefaultConfig()
	text := cfg.Describe()
	for _, want := range []string{"192-entry ROB", "8-wide fetch", "48-entry fetch buffer", "32 KB"} {
		if !contains(text, want) {
			t.Errorf("Describe missing %q:\n%s", want, text)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
