// Package xiter provides deterministic iteration helpers for maps.
//
// Go's map iteration order is deliberately randomized, which is fine
// for lookups but poisons anything that feeds a report, a golden-file
// comparison, or a floating-point accumulation (float64 addition is
// not associative, so even a pure sum is order-sensitive in its last
// ulp). The tealint `detiter` analyzer forbids ranging over maps in
// the report/emission packages; these helpers are the sanctioned
// replacement.
package xiter

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. The result is a
// fresh slice; m is not modified.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc returns m's keys ordered by the given comparison
// function (same contract as slices.SortFunc). Ties keep no
// particular order, so cmp should be a total order over the keys a
// caller can encounter.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, compare func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compare)
	return keys
}
