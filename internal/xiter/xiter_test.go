package xiter

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[uint64]string{9: "i", 2: "b", 7: "g", 0: "a"}
	want := []uint64{0, 2, 7, 9}
	for i := 0; i < 10; i++ { // map order is randomized per iteration
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 3, "c": 2}
	got := SortedKeysFunc(m, func(x, y string) int {
		switch {
		case m[x] > m[y]:
			return -1
		case m[x] < m[y]:
			return 1
		}
		return 0
	})
	want := []string{"b", "c", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}
