// Checkpoint support: exportable architectural state and dirty-word
// tracking for the functional memory. A Stream is the single source of
// architectural truth in the simulator (the cycle core only models
// timing), so a checkpoint of (registers, PC, sequence number, memory
// words) taken at a commit boundary is exact by construction — there
// is no approximation on the architectural side.
package emu

import (
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/xiter"
)

// ArchState is the exported architectural register state of a Stream
// at a quiescent point: every delivered instruction has been released
// (no rewind window is open).
type ArchState struct {
	Regs [isa.NumRegs]uint64
	// PCIndex is the static index of the next instruction (-1 after a
	// halt).
	PCIndex int
	// Seq is the sequence number the next instruction will carry —
	// equal to the number of instructions executed so far.
	Seq uint64
}

// ArchState exports the stream's architectural state. It must be
// called at a quiescent point; buffered undelivered instructions would
// otherwise be lost on restore.
func (s *Stream) ArchState() ArchState {
	return ArchState{Regs: s.regs, PCIndex: s.pcIndex, Seq: s.seq}
}

// NewStreamAt returns a stream resumed mid-program from an exported
// architectural state and a memory image matching it (the words as
// they were after the st.Seq-th instruction executed). The caller owns
// mem; the stream stores into it directly.
func NewStreamAt(p *program.Program, mem *Memory, st ArchState) *Stream {
	return &Stream{
		prog:     p,
		mem:      mem,
		regs:     st.Regs,
		pcIndex:  st.PCIndex,
		seq:      st.Seq,
		bufBase:  st.Seq,
		MaxInsts: 2_000_000_000,
	}
}

// MemDelta is one changed memory word.
type MemDelta struct {
	Addr uint64 // word-aligned
	Val  uint64
}

// TrackDirty turns on dirty-word tracking: subsequent stores record
// their word address until the next TakeDirty call.
func (m *Memory) TrackDirty() {
	if m.dirty == nil {
		m.dirty = make(map[uint64]struct{})
	}
}

// TakeDirty returns the words stored to since tracking started (or
// since the previous TakeDirty), sorted by address, and resets the
// dirty set. The values are the words' current contents, so applying
// successive TakeDirty batches in order to a copy of the initial image
// reconstructs this memory at each batch boundary.
func (m *Memory) TakeDirty() []MemDelta {
	if len(m.dirty) == 0 {
		return nil
	}
	deltas := make([]MemDelta, 0, len(m.dirty))
	for _, a := range xiter.SortedKeys(m.dirty) {
		deltas = append(deltas, MemDelta{Addr: a, Val: m.words[a]})
	}
	m.dirty = make(map[uint64]struct{})
	return deltas
}

// Apply writes a delta batch into the memory.
func (m *Memory) Apply(deltas []MemDelta) {
	for _, d := range deltas {
		m.words[d.Addr] = d.Val
	}
}
