package emu

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// TestALUSemanticsAgainstGo cross-checks every integer ALU opcode
// against Go's own semantics over random operands.
func TestALUSemanticsAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 55))
	type binCase struct {
		op   isa.Op
		eval func(a, b uint64) uint64
	}
	cases := []binCase{
		{isa.OpAdd, func(a, b uint64) uint64 { return a + b }},
		{isa.OpSub, func(a, b uint64) uint64 { return a - b }},
		{isa.OpMul, func(a, b uint64) uint64 { return a * b }},
		{isa.OpAnd, func(a, b uint64) uint64 { return a & b }},
		{isa.OpOr, func(a, b uint64) uint64 { return a | b }},
		{isa.OpXor, func(a, b uint64) uint64 { return a ^ b }},
		{isa.OpShl, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.OpShr, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.OpDiv, func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return uint64(int64(a) / int64(b))
		}},
		{isa.OpRem, func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return uint64(int64(a) % int64(b))
		}},
		{isa.OpSlt, func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		}},
	}
	for _, c := range cases {
		for trial := 0; trial < 50; trial++ {
			a, bv := rng.Uint64(), rng.Uint64()
			if trial%7 == 0 {
				bv = 0 // exercise divide-by-zero
			}
			b := program.NewBuilder("sem")
			b.Func("main")
			b.MoviU(isa.X(1), a)
			b.MoviU(isa.X(2), bv)
			b.Op3(c.op, isa.X(3), isa.X(1), isa.X(2))
			b.Halt()
			s := NewStream(b.MustBuild())
			for s.Next() != nil {
			}
			if got, want := s.Reg(isa.X(3)), c.eval(a, bv); got != want {
				t.Fatalf("%v(%#x, %#x) = %#x, want %#x", c.op, a, bv, got, want)
			}
		}
	}
}

// TestFPSemanticsAgainstGo cross-checks FP opcodes against math ops.
func TestFPSemanticsAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 66))
	type fpCase struct {
		op   isa.Op
		eval func(a, b float64) float64
	}
	cases := []fpCase{
		{isa.OpFAdd, func(a, b float64) float64 { return a + b }},
		{isa.OpFSub, func(a, b float64) float64 { return a - b }},
		{isa.OpFMul, func(a, b float64) float64 { return a * b }},
		{isa.OpFDiv, func(a, b float64) float64 { return a / b }},
		{isa.OpFMin, math.Min},
		{isa.OpFMax, math.Max},
	}
	for _, c := range cases {
		for trial := 0; trial < 40; trial++ {
			av := int64(rng.IntN(2000) - 1000)
			bv := int64(rng.IntN(2000) - 999)
			b := program.NewBuilder("fpsem")
			b.Func("main")
			b.Movi(isa.X(1), av)
			b.Movi(isa.X(2), bv)
			b.FMovI(isa.F(1), isa.X(1))
			b.FMovI(isa.F(2), isa.X(2))
			b.Op3(c.op, isa.F(3), isa.F(1), isa.F(2))
			b.Halt()
			s := NewStream(b.MustBuild())
			for s.Next() != nil {
			}
			got := math.Float64frombits(s.Reg(isa.F(3)))
			want := c.eval(float64(av), float64(bv))
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%v(%d, %d) = %v, want %v", c.op, av, bv, got, want)
			}
		}
	}
}

// TestFSqrtAgainstGo checks square-root semantics including negatives.
func TestFSqrtAgainstGo(t *testing.T) {
	for _, v := range []int64{0, 1, 4, 81, 1000000, -4} {
		b := program.NewBuilder("sqrt")
		b.Func("main")
		b.Movi(isa.X(1), v)
		b.FMovI(isa.F(1), isa.X(1))
		b.FSqrt(isa.F(2), isa.F(1))
		b.Halt()
		s := NewStream(b.MustBuild())
		for s.Next() != nil {
		}
		got := math.Float64frombits(s.Reg(isa.F(2)))
		want := math.Sqrt(float64(v))
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("fsqrt(%d) = %v, want %v", v, got, want)
		}
	}
}

// TestMemoryWordSemantics checks aligned-word load/store round trips
// through the sparse memory.
func TestMemoryWordSemantics(t *testing.T) {
	m := NewMemory(nil)
	rng := rand.New(rand.NewPCG(7, 77))
	ref := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.IntN(1<<16)) &^ 7
		if rng.IntN(2) == 0 {
			v := rng.Uint64()
			m.Store(addr, v)
			ref[addr] = v
		} else if got, want := m.Load(addr), ref[addr]; got != want {
			t.Fatalf("mem[%#x] = %#x, want %#x", addr, got, want)
		}
	}
	// Sub-word addresses alias their containing word.
	m.Store(0x100, 42)
	if m.Load(0x103) != 42 || m.Load(0x107) != 42 {
		t.Errorf("sub-word load does not alias the containing word")
	}
}
