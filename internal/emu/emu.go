// Package emu functionally executes a program and produces the
// correct-path dynamic instruction stream that the timing model
// consumes. Each dynamic instruction record carries its resolved memory
// address and branch outcome, so the cycle-level core never needs to
// re-execute semantics; it only models timing. The stream buffers
// uncommitted instructions and supports rewinding, which the core uses
// to refetch after squashing younger instructions on a memory-ordering
// violation.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/simerr"
)

// Inst is one dynamic (committed-path) instruction.
type Inst struct {
	// Static points at the static instruction.
	Static *isa.Inst
	// Index is the static-instruction index of the instruction.
	Index int
	// PC is the instruction's code address.
	PC uint64
	// Seq is the dynamic sequence number (0-based).
	Seq uint64
	// MemAddr is the effective address for loads, stores, and
	// prefetches; 0 otherwise.
	MemAddr uint64
	// Taken reports the outcome for conditional branches (always true
	// for jumps).
	Taken bool
	// NextIndex is the static index of the dynamically next instruction.
	NextIndex int
}

// IsBranch reports whether the dynamic instruction is control flow.
func (d *Inst) IsBranch() bool { return isa.IsBranch(d.Static.Op) }

// Memory is the functional data memory: a sparse map of 8-byte words.
type Memory struct {
	words map[uint64]uint64
	// dirty, when non-nil, records the word addresses stored to since
	// the last TakeDirty call (checkpoint delta tracking).
	dirty map[uint64]struct{}
}

// NewMemory returns a memory initialized from the program's data image.
//
//tealint:detsafe copies init into a fresh map; word insertion order is unobservable, the resulting memory is order-independent
func NewMemory(init map[uint64]uint64) *Memory {
	m := &Memory{words: make(map[uint64]uint64, len(init))}
	for a, v := range init {
		m.words[a] = v
	}
	return m
}

// Load reads the 8-byte word containing addr (addr is rounded down).
func (m *Memory) Load(addr uint64) uint64 { return m.words[addr&^7] }

// Store writes the 8-byte word containing addr.
func (m *Memory) Store(addr, val uint64) {
	m.words[addr&^7] = val
	if m.dirty != nil {
		m.dirty[addr&^7] = struct{}{}
	}
}

// Stream generates the dynamic instruction stream for a program.
type Stream struct {
	prog *program.Program
	mem  *Memory
	regs [isa.NumRegs]uint64

	pcIndex int
	seq     uint64
	done    bool

	// buf holds generated but not yet released (committed) dynamic
	// instructions; buf[0] has sequence number bufBase. cursor is the
	// next buffered position to deliver.
	buf     []*Inst
	bufBase uint64
	cursor  int

	// free recycles released instruction records. The core returns a
	// record via RecycleInst once the last pipeline structure holding it
	// retires; step reuses pooled records instead of allocating.
	free []*Inst

	// MaxInsts bounds execution to guard against runaway programs.
	MaxInsts uint64
}

// NewStream returns a stream positioned at the first instruction.
func NewStream(p *program.Program) *Stream {
	return &Stream{
		prog:     p,
		mem:      NewMemory(p.Data),
		MaxInsts: 2_000_000_000,
	}
}

// Memory exposes the functional memory (for tests and workload setup).
func (s *Stream) Memory() *Memory { return s.mem }

// Reg returns the architectural value of register r.
func (s *Stream) Reg(r isa.Reg) uint64 { return s.regs[r] }

// Done reports whether the program has halted and every generated
// instruction has been delivered.
func (s *Stream) Done() bool { return s.done && s.cursor == len(s.buf) }

// Next returns the next correct-path dynamic instruction, or nil when
// the program has halted. After a Rewind, Next re-delivers buffered
// instructions before generating new ones.
func (s *Stream) Next() *Inst {
	if s.cursor < len(s.buf) {
		d := s.buf[s.cursor]
		s.cursor++
		return d
	}
	if s.done {
		return nil
	}
	d := s.step()
	if d == nil {
		return nil
	}
	s.buf = append(s.buf, d)
	s.cursor = len(s.buf)
	return d
}

// Rewind repositions the stream so the next Next call re-delivers the
// buffered instruction with sequence number seq. Instructions with
// lower sequence numbers must not have been released yet.
func (s *Stream) Rewind(seq uint64) {
	if seq < s.bufBase || seq > s.bufBase+uint64(len(s.buf)) {
		//tealint:ignore nakedpanic caller (the core) controls rewind targets; out-of-range is a simulator bug, recovered at API boundaries
		panic(fmt.Sprintf("emu: rewind to seq %d outside buffer [%d,%d]",
			seq, s.bufBase, s.bufBase+uint64(len(s.buf))))
	}
	s.cursor = int(seq - s.bufBase)
}

// Release discards buffered instructions with sequence numbers below
// seq; they can no longer be rewound to. The core calls this at commit.
func (s *Stream) Release(seq uint64) {
	if seq <= s.bufBase {
		return
	}
	n := int(seq - s.bufBase)
	if n > s.cursor {
		//tealint:ignore nakedpanic commit order guarantees released seqs were delivered; violation is a simulator bug, recovered at API boundaries
		panic(fmt.Sprintf("emu: releasing undelivered instructions (seq %d, cursor at %d)",
			seq, s.bufBase+uint64(s.cursor)))
	}
	s.buf = append(s.buf[:0], s.buf[n:]...)
	s.bufBase = seq
	s.cursor -= n
}

// RecycleInst returns a released instruction record to the pool. The
// caller must be the record's last holder: it must already have been
// released (so the stream cannot re-deliver it) and no pipeline
// structure may still point at it.
func (s *Stream) RecycleInst(d *Inst) {
	s.free = append(s.free, d)
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits(f float64) uint64   { return math.Float64bits(f) }
func (s *Stream) wr(r isa.Reg, v uint64) {
	if r != isa.RegZero && r != isa.NoReg {
		s.regs[r] = v
	}
}

// step architecturally executes one instruction and returns its record.
func (s *Stream) step() *Inst {
	if s.pcIndex < 0 || s.pcIndex >= len(s.prog.Insts) {
		s.done = true
		return nil
	}
	if s.seq >= s.MaxInsts {
		// Reachable from user input (a program that never halts), so the
		// panic carries a typed error; run APIs recover it at the
		// boundary and return simerr.ErrRunaway.
		panic(simerr.New(simerr.ErrRunaway,
			simerr.Snapshot{Program: s.prog.Name, Seq: s.seq, PC: isa.PCOf(s.pcIndex)},
			"program %q exceeded %d instructions", s.prog.Name, s.MaxInsts))
	}
	in := &s.prog.Insts[s.pcIndex]
	var d *Inst
	if n := len(s.free); n > 0 {
		d = s.free[n-1]
		s.free = s.free[:n-1]
		*d = Inst{Static: in, Index: s.pcIndex, PC: isa.PCOf(s.pcIndex), Seq: s.seq}
	} else {
		d = &Inst{Static: in, Index: s.pcIndex, PC: isa.PCOf(s.pcIndex), Seq: s.seq}
	}
	s.seq++
	next := s.pcIndex + 1

	r := s.regs
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		s.wr(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.OpSub:
		s.wr(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.OpMul:
		s.wr(in.Rd, r[in.Rs1]*r[in.Rs2])
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			s.wr(in.Rd, 0)
		} else {
			s.wr(in.Rd, uint64(int64(r[in.Rs1])/int64(r[in.Rs2])))
		}
	case isa.OpRem:
		if r[in.Rs2] == 0 {
			s.wr(in.Rd, 0)
		} else {
			s.wr(in.Rd, uint64(int64(r[in.Rs1])%int64(r[in.Rs2])))
		}
	case isa.OpAnd:
		s.wr(in.Rd, r[in.Rs1]&r[in.Rs2])
	case isa.OpOr:
		s.wr(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.OpXor:
		s.wr(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.OpShl:
		s.wr(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
	case isa.OpShr:
		s.wr(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
	case isa.OpAddi:
		s.wr(in.Rd, r[in.Rs1]+uint64(in.Imm))
	case isa.OpAndi:
		s.wr(in.Rd, r[in.Rs1]&uint64(in.Imm))
	case isa.OpShli:
		s.wr(in.Rd, r[in.Rs1]<<(uint64(in.Imm)&63))
	case isa.OpShri:
		s.wr(in.Rd, r[in.Rs1]>>(uint64(in.Imm)&63))
	case isa.OpMovi:
		s.wr(in.Rd, uint64(in.Imm))
	case isa.OpSlt:
		if int64(r[in.Rs1]) < int64(r[in.Rs2]) {
			s.wr(in.Rd, 1)
		} else {
			s.wr(in.Rd, 0)
		}
	case isa.OpFAdd:
		s.wr(in.Rd, bits(f64(r[in.Rs1])+f64(r[in.Rs2])))
	case isa.OpFSub:
		s.wr(in.Rd, bits(f64(r[in.Rs1])-f64(r[in.Rs2])))
	case isa.OpFMul:
		s.wr(in.Rd, bits(f64(r[in.Rs1])*f64(r[in.Rs2])))
	case isa.OpFDiv:
		s.wr(in.Rd, bits(f64(r[in.Rs1])/f64(r[in.Rs2])))
	case isa.OpFSqrt:
		s.wr(in.Rd, bits(math.Sqrt(f64(r[in.Rs1]))))
	case isa.OpFNeg:
		s.wr(in.Rd, bits(-f64(r[in.Rs1])))
	case isa.OpFMin:
		s.wr(in.Rd, bits(math.Min(f64(r[in.Rs1]), f64(r[in.Rs2]))))
	case isa.OpFMax:
		s.wr(in.Rd, bits(math.Max(f64(r[in.Rs1]), f64(r[in.Rs2]))))
	case isa.OpFCmpLT:
		if f64(r[in.Rs1]) < f64(r[in.Rs2]) {
			s.wr(in.Rd, 1)
		} else {
			s.wr(in.Rd, 0)
		}
	case isa.OpFMovI:
		s.wr(in.Rd, bits(float64(int64(r[in.Rs1]))))
	case isa.OpIMovF:
		s.wr(in.Rd, uint64(int64(f64(r[in.Rs1]))))
	case isa.OpLoad, isa.OpLoadF:
		d.MemAddr = r[in.Rs1] + uint64(in.Imm)
		s.wr(in.Rd, s.mem.Load(d.MemAddr))
	case isa.OpStore, isa.OpStoreF:
		d.MemAddr = r[in.Rs1] + uint64(in.Imm)
		s.mem.Store(d.MemAddr, r[in.Rs2])
	case isa.OpPrefetch:
		d.MemAddr = r[in.Rs1] + uint64(in.Imm)
	case isa.OpBeq:
		d.Taken = r[in.Rs1] == r[in.Rs2]
	case isa.OpBne:
		d.Taken = r[in.Rs1] != r[in.Rs2]
	case isa.OpBlt:
		d.Taken = int64(r[in.Rs1]) < int64(r[in.Rs2])
	case isa.OpBge:
		d.Taken = int64(r[in.Rs1]) >= int64(r[in.Rs2])
	case isa.OpJmp:
		d.Taken = true
	case isa.OpCall:
		s.wr(in.Rd, isa.PCOf(s.pcIndex+1)) // link: the return address
		d.Taken = true
	case isa.OpRet:
		d.Taken = true
	case isa.OpCsrFlush:
	case isa.OpHalt:
		s.done = true
	default:
		// Reachable from user-built programs (a corrupt or future-version
		// opcode); typed so API boundaries convert it to an error.
		panic(simerr.New(simerr.ErrInvalidProgram,
			simerr.Snapshot{Program: s.prog.Name, Seq: s.seq, PC: d.PC},
			"unimplemented opcode %v", in.Op))
	}

	if d.Taken && isa.IsBranch(in.Op) {
		if in.Op == isa.OpRet {
			next = isa.IndexOf(r[in.Rs1])
		} else {
			next = in.Target
		}
	}
	d.NextIndex = next
	s.pcIndex = next
	if in.Op == isa.OpHalt {
		d.NextIndex = -1
	}
	return d
}

// Run executes the whole program functionally (no timing) and returns
// the number of dynamic instructions. Useful for workload validation.
func Run(p *program.Program) uint64 {
	s := NewStream(p)
	n := uint64(0)
	for {
		d := s.Next()
		if d == nil {
			return n
		}
		n++
		s.Release(d.Seq + 1)
	}
}
