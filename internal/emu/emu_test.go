package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func sumLoop(n int64) *program.Program {
	b := program.NewBuilder("sum")
	b.Func("main")
	b.Movi(isa.X(1), 0) // i
	b.Movi(isa.X(2), 0) // sum
	b.Movi(isa.X(3), n)
	b.Label("loop")
	b.Add(isa.X(2), isa.X(2), isa.X(1))
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

func drain(s *Stream) []*Inst {
	var out []*Inst
	for {
		d := s.Next()
		if d == nil {
			return out
		}
		out = append(out, d)
	}
}

func TestSumLoopResult(t *testing.T) {
	p := sumLoop(10)
	s := NewStream(p)
	drain(s)
	if got := s.Reg(isa.X(2)); got != 45 {
		t.Errorf("sum 0..9 = %d, want 45", got)
	}
	if !s.Done() {
		t.Errorf("stream not done after drain")
	}
}

func TestDynamicInstructionCount(t *testing.T) {
	p := sumLoop(5)
	// 3 movi + 5*(add,addi,blt) + halt = 19
	if n := Run(p); n != 19 {
		t.Errorf("dynamic count = %d, want 19", n)
	}
}

func TestBranchOutcomes(t *testing.T) {
	p := sumLoop(3)
	s := NewStream(p)
	insts := drain(s)
	var branches []*Inst
	for _, d := range insts {
		if d.IsBranch() {
			branches = append(branches, d)
		}
	}
	if len(branches) != 3 {
		t.Fatalf("got %d dynamic branches, want 3", len(branches))
	}
	for i, br := range branches {
		wantTaken := i < 2
		if br.Taken != wantTaken {
			t.Errorf("branch %d taken=%v, want %v", i, br.Taken, wantTaken)
		}
		if wantTaken && br.NextIndex != br.Static.Target {
			t.Errorf("taken branch NextIndex=%d, want target %d", br.NextIndex, br.Static.Target)
		}
		if !wantTaken && br.NextIndex != br.Index+1 {
			t.Errorf("not-taken branch NextIndex=%d, want fallthrough %d", br.NextIndex, br.Index+1)
		}
	}
}

func TestLoadStoreAddresses(t *testing.T) {
	b := program.NewBuilder("mem")
	base := b.Alloc(64, 8)
	b.SetWord(base, 7)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Load(isa.X(2), isa.X(1), 0)  // x2 = 7
	b.Store(isa.X(1), isa.X(2), 8) // mem[base+8] = 7
	b.Load(isa.X(3), isa.X(1), 8)  // x3 = 7
	b.Add(isa.X(4), isa.X(2), isa.X(3))
	b.Halt()
	p := b.MustBuild()
	s := NewStream(p)
	insts := drain(s)
	if s.Reg(isa.X(4)) != 14 {
		t.Errorf("x4 = %d, want 14", s.Reg(isa.X(4)))
	}
	if insts[1].MemAddr != base || insts[2].MemAddr != base+8 {
		t.Errorf("mem addresses: load=%#x store=%#x", insts[1].MemAddr, insts[2].MemAddr)
	}
	if s.Memory().Load(base+8) != 7 {
		t.Errorf("store did not update memory")
	}
}

func TestFloatOps(t *testing.T) {
	b := program.NewBuilder("fp")
	b.Func("main")
	b.Movi(isa.X(1), 9)
	b.FMovI(isa.F(1), isa.X(1)) // f1 = 9.0
	b.FSqrt(isa.F(2), isa.F(1)) // f2 = 3.0
	b.Movi(isa.X(2), 2)
	b.FMovI(isa.F(3), isa.X(2))
	b.FMul(isa.F(4), isa.F(2), isa.F(3))                        // 6.0
	b.FAdd(isa.F(5), isa.F(4), isa.F(3))                        // 8.0
	b.FDiv(isa.F(6), isa.F(5), isa.F(3))                        // 4.0
	b.FSub(isa.F(7), isa.F(6), isa.F(3))                        // 2.0
	b.FCmpLT(isa.X(3), isa.F(3), isa.F(6))                      // 2 < 4 -> 1
	b.I(isa.Inst{Op: isa.OpIMovF, Rd: isa.X(4), Rs1: isa.F(7)}) // 2
	b.Halt()
	p := b.MustBuild()
	s := NewStream(p)
	drain(s)
	if s.Reg(isa.X(3)) != 1 {
		t.Errorf("flt result = %d, want 1", s.Reg(isa.X(3)))
	}
	if s.Reg(isa.X(4)) != 2 {
		t.Errorf("fp->int = %d, want 2", s.Reg(isa.X(4)))
	}
}

func TestDivRemByZero(t *testing.T) {
	b := program.NewBuilder("div0")
	b.Func("main")
	b.Movi(isa.X(1), 10)
	b.Movi(isa.X(2), 0)
	b.Div(isa.X(3), isa.X(1), isa.X(2))
	b.Rem(isa.X(4), isa.X(1), isa.X(2))
	b.Movi(isa.X(5), 3)
	b.Div(isa.X(6), isa.X(1), isa.X(5))
	b.Rem(isa.X(7), isa.X(1), isa.X(5))
	b.Halt()
	s := NewStream(b.MustBuild())
	drain(s)
	if s.Reg(isa.X(3)) != 0 || s.Reg(isa.X(4)) != 0 {
		t.Errorf("div/rem by zero should yield 0")
	}
	if s.Reg(isa.X(6)) != 3 || s.Reg(isa.X(7)) != 1 {
		t.Errorf("10/3=%d 10%%3=%d, want 3 and 1", s.Reg(isa.X(6)), s.Reg(isa.X(7)))
	}
}

func TestX0Hardwired(t *testing.T) {
	b := program.NewBuilder("x0")
	b.Func("main")
	b.Movi(isa.X(0), 99)
	b.Addi(isa.X(1), isa.X(0), 5)
	b.Halt()
	s := NewStream(b.MustBuild())
	drain(s)
	if s.Reg(isa.X(0)) != 0 {
		t.Errorf("x0 = %d, want 0", s.Reg(isa.X(0)))
	}
	if s.Reg(isa.X(1)) != 5 {
		t.Errorf("x1 = %d, want 5", s.Reg(isa.X(1)))
	}
}

func TestRewindRedeliversSameRecords(t *testing.T) {
	p := sumLoop(4)
	s := NewStream(p)
	var first []*Inst
	for i := 0; i < 8; i++ {
		first = append(first, s.Next())
	}
	s.Rewind(3)
	for i := 3; i < 8; i++ {
		d := s.Next()
		if d != first[i] {
			t.Fatalf("rewound delivery %d: got seq %d, want same record seq %d", i, d.Seq, first[i].Seq)
		}
	}
	// Continue past the previously generated point.
	d := s.Next()
	if d == nil || d.Seq != 8 {
		t.Fatalf("post-rewind generation broken: %+v", d)
	}
}

func TestReleaseDropsBufferAndForbidsRewind(t *testing.T) {
	p := sumLoop(4)
	s := NewStream(p)
	for i := 0; i < 6; i++ {
		s.Next()
	}
	s.Release(4)
	defer func() {
		if recover() == nil {
			t.Fatalf("rewind below released seq should panic")
		}
	}()
	s.Rewind(2)
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	p := sumLoop(6)
	s := NewStream(p)
	prev := int64(-1)
	for {
		d := s.Next()
		if d == nil {
			break
		}
		if int64(d.Seq) != prev+1 {
			t.Fatalf("seq jumped from %d to %d", prev, d.Seq)
		}
		prev = int64(d.Seq)
		s.Release(d.Seq + 1)
	}
}

func TestHaltEndsStream(t *testing.T) {
	b := program.NewBuilder("halt")
	b.Func("main")
	b.Nop()
	b.Halt()
	b.Nop() // unreachable
	s := NewStream(b.MustBuild())
	insts := drain(s)
	if len(insts) != 2 {
		t.Fatalf("got %d dynamic insts, want 2 (nop+halt)", len(insts))
	}
	if insts[1].Static.Op != isa.OpHalt || insts[1].NextIndex != -1 {
		t.Errorf("halt record malformed: %+v", insts[1])
	}
}
