// Package profio wraps runtime/pprof profile collection for the
// command-line tools: a single entry point runs a workload function
// with optional CPU and heap profiling, so every command exposes the
// same -cpuprofile/-memprofile contract (the profiles feed `go tool
// pprof` when optimizing the simulator's capture/replay pipeline).
package profio

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiled runs f, writing a CPU profile to cpuPath while it runs and
// a heap profile to memPath after it returns. Empty paths disable the
// corresponding profile. The heap profile is preceded by a GC so it
// reflects live objects, matching `go test -memprofile`.
func Profiled(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		cf, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
		}()
	}
	if memPath != "" {
		defer func() {
			mf, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profio: creating heap profile:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "profio: writing heap profile:", err)
			}
		}()
	}
	return f()
}
