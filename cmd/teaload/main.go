// Command teaload drives a running teaserve instance with concurrent
// profiling jobs from synthetic tenants and reports latency and
// cache-dedup numbers — the load half of the service's BENCH snapshot
// (docs/OPERATIONS.md explains how to read one).
//
//	teaserve -addr 127.0.0.1:8315 -queue 2048 -quota-rate 0 &
//	teaload -url http://127.0.0.1:8315 -jobs 1000 -tenants 4 \
//	        -concurrency 1000 -scale 0.05 -label serve -o BENCH_serve.json
//
// Every submission that is shed with 429 honors the server's
// Retry-After before retrying; a 429 without the header, and transient
// transport errors (connection refused/reset while the server restarts
// or sheds load), back off exponentially with full jitter so a
// thundering herd of blocked workers does not re-converge on the same
// instant. The run therefore exercises the cooperative-backpressure
// contract end to end. Transport retries re-POST the submission, which
// can double-submit if the first request died after admission — fine
// for a load generator, where the duplicate is just one more job. The
// process exits nonzero if any job fails, any response is a 5xx, or
// transport retries are exhausted — i.e. a clean exit is evidence of
// zero server panics under the run's concurrency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// jobResult is one job's outcome as observed by the client.
type jobResult struct {
	status     string
	latencyMs  float64 // accepted -> terminal
	retries429 int
	retriesNet int  // transient transport errors retried with backoff
	transport  bool // transport-level failure (retries exhausted)
	code5xx    bool
}

// report is the BENCH_*.json document teaload writes.
type report struct {
	Date      string       `json:"date"`
	Label     string       `json:"label,omitempty"`
	GoVersion string       `json:"go_version"`
	Config    loadConfig   `json:"config"`
	Results   loadResults  `json:"results"`
	Server    serverCounts `json:"server"`
}

type loadConfig struct {
	URL         string   `json:"url"`
	Jobs        int      `json:"jobs"`
	Tenants     int      `json:"tenants"`
	Concurrency int      `json:"concurrency"`
	Workloads   []string `json:"workloads"`
	Techniques  []string `json:"techniques"`
	Scale       float64  `json:"scale"`
}

type loadResults struct {
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	Canceled      int     `json:"canceled"`
	Rejections429 int     `json:"rejections_429"`
	NetRetries    int     `json:"net_retries"`
	Transport     int     `json:"transport_errors"`
	Server5xx     int     `json:"server_5xx"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	WallSeconds   float64 `json:"wall_s"`
	JobsPerSecond float64 `json:"jobs_per_s"`
}

// serverCounts is the dedup evidence: /v1/stats deltas across the run.
type serverCounts struct {
	Captures   uint64  `json:"captures"`
	CacheRate  float64 `json:"capture_dedup_rate"` // 1 - captures/completed
	StoreHits  uint64  `json:"store_hits"`
	StoreMiss  uint64  `json:"store_misses"`
	StorePanic int     `json:"server_panics"` // always 0 on a clean exit; recorded explicitly
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8315", "teaserve base URL")
	jobs := flag.Int("jobs", 1000, "total jobs to submit")
	tenants := flag.Int("tenants", 4, "synthetic tenants to spread jobs across")
	concurrency := flag.Int("concurrency", 1000, "jobs kept in flight concurrently")
	workloadsCSV := flag.String("workloads", "bwaves,exchange2,mcf,x264", "comma-separated workload names to cycle through")
	techniquesCSV := flag.String("techniques", "tea", "comma-separated techniques per job")
	scale := flag.Float64("scale", 0.05, "config.scale for every job")
	poll := flag.Duration("poll", 25*time.Millisecond, "job status poll interval")
	seed := flag.Int64("seed", 1, "seed for the retry-jitter PRNG (per-worker streams derive from it)")
	label := flag.String("label", "serve", "label recorded in the report")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	names := strings.Split(*workloadsCSV, ",")
	techniques := strings.Split(*techniquesCSV, ",")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency,
		MaxIdleConnsPerHost: *concurrency,
	}}

	before, err := fetchStats(client, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaload: server not reachable:", err)
		os.Exit(1)
	}

	results := make([]jobResult, *jobs)
	work := make(chan int)
	var wg sync.WaitGroup
	par := *concurrency
	if par > *jobs {
		par = *jobs
	}
	start := time.Now()
	for p := 0; p < par; p++ {
		wg.Add(1)
		// Each worker owns a PRNG stream so jitter needs no locking and a
		// given (seed, worker) pair replays the same delays.
		rng := rand.New(rand.NewSource(*seed + int64(p)))
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runJob(client, *url, jobSpec{
					tenant:     fmt.Sprintf("tenant-%d", i%*tenants),
					workload:   names[i%len(names)],
					techniques: techniques,
					scale:      *scale,
				}, *poll, rng)
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchStats(client, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaload: stats after run:", err)
		os.Exit(1)
	}

	rep := summarize(results, wall, loadConfig{
		URL: *url, Jobs: *jobs, Tenants: *tenants, Concurrency: par,
		Workloads: names, Techniques: techniques, Scale: *scale,
	}, before, after, *label)

	doc, _ := json.MarshalIndent(rep, "", "  ")
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "teaload:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(doc)
	}
	fmt.Fprintf(os.Stderr, "teaload: %d/%d done in %.1fs  p50=%.0fms p99=%.0fms  captures=%d dedup=%.1f%%  retries: 429=%d net=%d\n",
		rep.Results.Completed, *jobs, rep.Results.WallSeconds,
		rep.Results.P50Ms, rep.Results.P99Ms, rep.Server.Captures, rep.Server.CacheRate*100,
		rep.Results.Rejections429, rep.Results.NetRetries)
	if rep.Results.Failed > 0 || rep.Results.Server5xx > 0 || rep.Results.Transport > 0 {
		fmt.Fprintln(os.Stderr, "teaload: FAIL — job failures, 5xx responses, or transport errors (see report)")
		os.Exit(1)
	}
}

type jobSpec struct {
	tenant     string
	workload   string
	techniques []string
	scale      float64
}

// Backoff tuning: transient failures retry with full jitter — a sleep
// drawn uniformly from [0, min(backoffCap, backoffBase<<attempt)] — so
// concurrent workers that failed together spread back out instead of
// retrying in lockstep.
const (
	backoffBase = 50 * time.Millisecond
	backoffCap  = 2 * time.Second
	maxNetRetry = 8 // transient transport errors before giving up
)

// backoff returns a full-jitter delay for the given attempt number.
func backoff(rng *rand.Rand, attempt int) time.Duration {
	d := backoffBase << uint(attempt)
	if d <= 0 || d > backoffCap {
		d = backoffCap
	}
	return time.Duration(rng.Int63n(int64(d) + 1))
}

// runJob submits one job — honoring Retry-After across 429 rejections,
// jittered-backoff retrying 429s without the header and transient
// transport errors — then polls it to a terminal state.
func runJob(client *http.Client, base string, spec jobSpec, poll time.Duration, rng *rand.Rand) jobResult {
	var res jobResult
	body, _ := json.Marshal(map[string]any{
		"tenant":     spec.tenant,
		"workload":   spec.workload,
		"techniques": spec.techniques,
		"config":     map[string]any{"scale": spec.scale},
	})

	var id string
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			if res.retriesNet >= maxNetRetry {
				res.transport = true
				res.status = "transport_error"
				return res
			}
			res.retriesNet++
			time.Sleep(backoff(rng, res.retriesNet))
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
				res.status = "bad_submit_response"
				return res
			}
			id = sub.ID
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 120:
			res.retries429++
			if d, ok := retryAfter(resp); ok {
				time.Sleep(d)
			} else {
				time.Sleep(backoff(rng, attempt))
			}
			continue
		case resp.StatusCode >= 500:
			res.code5xx = true
			res.status = "http_" + strconv.Itoa(resp.StatusCode)
			return res
		default:
			res.status = "http_" + strconv.Itoa(resp.StatusCode)
			return res
		}
		break
	}

	accepted := time.Now()
	netErrs := 0
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			if netErrs >= maxNetRetry {
				res.transport = true
				res.status = "transport_error"
				return res
			}
			netErrs++
			res.retriesNet++
			time.Sleep(backoff(rng, netErrs))
			continue
		}
		netErrs = 0
		data, _ := io.ReadAll(resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		if code >= 500 {
			res.code5xx = true
			res.status = "http_" + strconv.Itoa(code)
			return res
		}
		var view struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(data, &view); err != nil {
			res.status = "bad_job_response"
			return res
		}
		if view.Status == "done" || view.Status == "failed" || view.Status == "canceled" {
			res.status = view.Status
			res.latencyMs = float64(time.Since(accepted)) / float64(time.Millisecond)
			return res
		}
		time.Sleep(poll)
	}
}

// retryAfter parses the server's backoff hint; ok is false when the
// header is absent or unusable (the caller falls back to jittered
// exponential backoff).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second, true
	}
	return 0, false
}

// statsDoc is the subset of /v1/stats teaload reads.
type statsDoc struct {
	Captures   uint64 `json:"captures"`
	TraceStore struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"tracestore"`
}

func fetchStats(client *http.Client, base string) (statsDoc, error) {
	var doc statsDoc
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("stats endpoint returned %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	return doc, err
}

// summarize folds per-job results and the server-side deltas into the
// report document.
func summarize(results []jobResult, wall time.Duration, cfg loadConfig, before, after statsDoc, label string) report {
	var latencies []float64
	var out loadResults
	for _, r := range results {
		switch r.status {
		case "done":
			out.Completed++
			latencies = append(latencies, r.latencyMs)
		case "canceled":
			out.Canceled++
		default:
			out.Failed++
		}
		out.Rejections429 += r.retries429
		out.NetRetries += r.retriesNet
		if r.transport {
			out.Transport++
		}
		if r.code5xx {
			out.Server5xx++
		}
	}
	sort.Float64s(latencies)
	out.P50Ms = percentile(latencies, 0.50)
	out.P90Ms = percentile(latencies, 0.90)
	out.P99Ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		out.MaxMs = latencies[n-1]
	}
	out.WallSeconds = wall.Seconds()
	if out.WallSeconds > 0 {
		out.JobsPerSecond = float64(out.Completed) / out.WallSeconds
	}

	srv := serverCounts{
		Captures:  after.Captures - before.Captures,
		StoreHits: after.TraceStore.Hits - before.TraceStore.Hits,
		StoreMiss: after.TraceStore.Misses - before.TraceStore.Misses,
	}
	if out.Completed > 0 {
		srv.CacheRate = 1 - float64(srv.Captures)/float64(out.Completed)
	}
	return report{
		Date:      time.Now().Format("2006-01-02"),
		Label:     label,
		GoVersion: runtime.Version(),
		Config:    cfg,
		Results:   out,
		Server:    srv,
	}
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
