// Command teabench converts `go test -bench` output into the
// repository's BENCH_<date>.json format: one record per benchmark with
// the standard ns/op, B/op, and allocs/op columns plus every custom
// metric the harness reports (tea_err_%, trace_bytes/cycle, ...).
// scripts/bench.sh pipes the raw benchmark output through it:
//
//	go test -bench=. -benchmem . | teabench -label after -o BENCH_20260806.json
//
// Committed BENCH files are the before/after evidence for performance
// work; see DESIGN.md §6 for how to read them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<date>.json document.
type File struct {
	Date       string   `json:"date"`
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	GOOS       string   `json:"goos"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "label recorded in the file (e.g. baseline, after-replay)")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date recorded in the file")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teabench:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "teabench: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := File{
		Date:       *date,
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOOS:       runtime.GOOS,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "teabench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "teabench:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines from go test output. A line
// looks like:
//
//	BenchmarkFig5Accuracy-16  1  4560122983 ns/op  550253440 B/op  7498544 allocs/op  6.407 tea_err_%
//
// i.e. name, run count, then (value, unit) pairs.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- FAIL" lines
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		res := Result{Name: name, Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}
