// Command teachaos runs the fault-injection chaos suite against the
// capture/replay pipeline and reports every mutant's disposition. The
// trace mutants cover record-level damage (truncation, bit flips,
// record swaps) and v4-codec-targeted damage: corrupted pattern-table
// tokens (token@N) and column boundaries (collen@N length prefixes,
// colswap@A.B cross-column byte swaps). The contract it enforces:
// every fault — a mutated trace stream or a corrupted serialized
// checkpoint — yields either byte-identical profiles or a typed error
// — never a crash, a hang, or a silently wrong profile (a corrupt
// checkpoint must fail decoding rather than restore a core that would
// record a diverged trace).
//
//	teachaos [-seed n] [-workload name|all] [-scale f] [-disk] [-v]
//
// With -disk the suite instead attacks the durability layer: disk
// faults (torn final record, mid-stream bit flip, ENOSPC, EIO, slow
// I/O) are injected under the job journal, and the contract is that
// the server never crashes and never serves wrong bytes — torn tails
// truncate on recovery, corruption fails typed, runtime write failures
// degrade to memory-only mode.
//
// The sweep is fully determined by the seed, so a reported violation
// reproduces from the printed (seed, workload) pair. Exits nonzero if
// any scenario violates the contract.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/workloads"
)

func main() {
	seed := flag.Uint64("seed", 1, "chaos seed (drives every mutation)")
	workload := flag.String("workload", "bwaves", "workload to capture, or 'all'")
	scale := flag.Float64("scale", 0.05, "workload size multiplier")
	disk := flag.Bool("disk", false, "run the disk-fault sweep against the job journal instead of the trace sweep")
	verbose := flag.Bool("v", false, "print every scenario, not just violations")
	flag.Parse()

	if *disk {
		tmp, err := os.MkdirTemp("", "teachaos-disk-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "teachaos:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(tmp)
		rep, err := faultinject.DiskSweep(tmp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teachaos: disk sweep:", err)
			os.RemoveAll(tmp)
			os.Exit(1)
		}
		for _, o := range rep.Outcomes {
			if *verbose || !o.OK {
				fmt.Printf("%-28s %s\n", o.Fault, o.Detail)
			}
		}
		fmt.Printf("disk: %d scenarios, %d violations\n", len(rep.Outcomes), rep.Violations)
		if rep.Violations > 0 {
			fmt.Fprintf(os.Stderr, "teachaos: %d contract violations\n", rep.Violations)
			os.RemoveAll(tmp)
			os.Exit(1)
		}
		os.RemoveAll(tmp)
		return
	}

	rc := analysis.DefaultRunConfig()
	rc.Scale = *scale

	var targets []workloads.Workload
	if *workload == "all" {
		targets = workloads.All()
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teachaos:", err)
			os.Exit(2)
		}
		targets = []workloads.Workload{w}
	}

	violations := 0
	for _, w := range targets {
		rep, err := faultinject.Sweep(w, rc, faultinject.DefaultConfig(*seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "teachaos: %s: %v\n", w.Name, err)
			os.Exit(1)
		}
		for _, o := range rep.Outcomes {
			if *verbose || !o.OK {
				fmt.Printf("%-10s %-24s %s\n", w.Name, o.Fault, o.Detail)
			}
		}
		fmt.Printf("%s: %d scenarios, %d violations (seed %d)\n",
			w.Name, len(rep.Outcomes), rep.Violations, rep.Seed)
		violations += rep.Violations
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "teachaos: %d contract violations\n", violations)
		os.Exit(1)
	}
}
