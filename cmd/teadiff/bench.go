package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchResult / benchFile mirror cmd/teabench's JSON documents (that
// command is package main, so the types are re-declared here).
type benchResult struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Date       string        `json:"date"`
	Label      string        `json:"label,omitempty"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	GOOS       string        `json:"goos"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// diffBench is the bench-regression gate: every benchmark in the
// baseline must exist in the current run with bit-identical custom
// metrics. The simulator is deterministic, so the accuracy metrics
// (tea_err_%, coverage ratios, ...) have exactly one correct value —
// any drift means behavior changed, and the gate fails. Timing columns
// (ns_per_op and friends) are machine- and load-dependent; they are
// reported for eyeballing but never gated.
func diffBench(baselinePath, currentPath string) int {
	baseline, err := readBenchFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "teadiff: reading baseline: %v\n", err)
		return 2
	}
	current, err := readBenchFile(currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "teadiff: reading current: %v\n", err)
		return 2
	}
	cur := make(map[string]benchResult, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}

	fmt.Printf("bench gate: %s (%s) vs %s (%s)\n",
		baselinePath, baseline.Date, currentPath, current.Date)
	fmt.Printf("%-36s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ratio")

	drift := 0
	for _, base := range baseline.Benchmarks {
		c, ok := cur[base.Name]
		if !ok {
			fmt.Printf("%-36s MISSING from current run\n", base.Name)
			drift++
			continue
		}
		ratio := 0.0
		if base.NsPerOp > 0 {
			ratio = c.NsPerOp / base.NsPerOp
		}
		fmt.Printf("%-36s %14.0f %14.0f %7.2fx\n", base.Name, base.NsPerOp, c.NsPerOp, ratio)
		for _, msg := range metricDrift(base.Metrics, c.Metrics) {
			fmt.Printf("    DRIFT %s\n", msg)
			drift++
		}
	}
	if drift > 0 {
		fmt.Printf("\nFAIL: %d accuracy-metric drift(s) — deterministic metrics changed\n", drift)
		return 1
	}
	fmt.Printf("\nok: all accuracy metrics bit-identical (ns_per_op is informational)\n")
	return 0
}

// metricDrift describes every way cur's metric map differs from base's:
// a changed value, a metric that vanished, or a new metric the baseline
// has never seen (new metrics require a new committed baseline, not a
// silent pass).
func metricDrift(base, cur map[string]float64) []string {
	var msgs []string
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cv, ok := cur[k]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: missing (baseline %v)", k, base[k]))
			continue
		}
		if cv != base[k] {
			msgs = append(msgs, fmt.Sprintf("%s: %v -> %v", k, base[k], cv))
		}
	}
	extras := make([]string, 0)
	for k := range cur {
		if _, ok := base[k]; !ok {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		msgs = append(msgs, fmt.Sprintf("%s: %v (not in baseline)", k, cur[k]))
	}
	return msgs
}
