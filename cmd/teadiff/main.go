// Command teadiff runs the same benchmark in two configurations and
// prints the per-instruction PICS delta — the optimization workflow of
// the Section 6 case studies: profile, change something, re-profile,
// and see which instructions' cycle stacks shrank or grew.
//
//	teadiff -mode lbm-prefetch -dist 3   # lbm: distance-0 vs distance-N
//	teadiff -mode nab-fastmath           # nab: with vs without flushes
//
// It also gates benchmark results: -mode bench compares two
// cmd/teabench JSON files and fails if any deterministic accuracy
// metric drifted (timing columns are reported, never gated):
//
//	teadiff -mode bench -baseline BENCH_old.json -current BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/workloads"
)

func main() {
	mode := flag.String("mode", "lbm-prefetch", "lbm-prefetch, nab-fastmath, or bench")
	from := flag.Int("from", 1, "lbm-prefetch: baseline prefetch distance (>0 keeps layouts identical)")
	dist := flag.Int("dist", 4, "lbm-prefetch: optimized prefetch distance")
	top := flag.Int("top", 8, "number of diff rows to print")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	baseline := flag.String("baseline", "", "bench: committed teabench JSON baseline")
	current := flag.String("current", "", "bench: teabench JSON from the run under test")
	flag.Parse()

	if *mode == "bench" {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "teadiff: -mode bench requires -baseline and -current")
			os.Exit(2)
		}
		os.Exit(diffBench(*baseline, *current))
	}

	rc := analysis.DefaultRunConfig()
	rc.Scale = *scale

	var name string
	var before, after *program.Program
	switch *mode {
	case "lbm-prefetch":
		w, _ := workloads.ByName("lbm")
		iters := int(float64(w.DefaultIters) * rc.Scale)
		name = fmt.Sprintf("lbm: prefetch distance %d -> %d", *from, *dist)
		before = workloads.LBM(iters, *from)
		after = workloads.LBM(iters, *dist)
	case "nab-fastmath":
		w, _ := workloads.ByName("nab")
		iters := int(float64(w.DefaultIters) * rc.Scale)
		name = "nab: IEEE-compliant -> fast-math"
		before = workloads.NAB(iters, false)
		after = workloads.NAB(iters, true)
	default:
		fmt.Fprintf(os.Stderr, "teadiff: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	w, _ := workloads.ByName("lbm") // workload descriptor only labels the run
	brBefore := analysis.RunProgram(w, before, rc)
	brAfter := analysis.RunProgram(w, after, rc)
	speedup := float64(brBefore.Stats.Cycles) / float64(brAfter.Stats.Cycles)

	fmt.Printf("%s\n", name)
	fmt.Printf("before: %d cycles   after: %d cycles   speedup: %.2fx\n\n",
		brBefore.Stats.Cycles, brAfter.Stats.Cycles, speedup)

	// Normalize both TEA profiles to their own golden totals so the
	// deltas are in real cycles of each run.
	brBefore.TEA.Normalize(brBefore.Golden.Total())
	brAfter.TEA.Normalize(brAfter.Golden.Total())

	if before.NumInsts() != after.NumInsts() {
		// The builds lay code out differently (instructions were added
		// or removed), so per-PC deltas would compare unrelated
		// instructions. Diff at function granularity instead, the way
		// symbol-based tools do.
		fmt.Println("(layouts differ: diffing at function granularity)")
		diffFunctions(brBefore.TEA.ByFunction(before), brAfter.TEA.ByFunction(after))
		return
	}

	diffs := pics.DiffProfiles(brBefore.TEA, brAfter.TEA)
	fmt.Printf("%-10s %-28s %12s %12s %12s\n", "pc", "instruction", "before", "after", "delta")
	shown := 0
	for _, d := range diffs {
		if shown >= *top {
			break
		}
		in := before.Inst(d.PC)
		dis := "?"
		if in != nil {
			dis = in.String()
		}
		fmt.Printf("%#08x %-28s %12.0f %12.0f %+12.0f\n", d.PC, dis, d.Before, d.After, d.Delta)
		shown++
	}
	fmt.Println("\n(negative delta: the optimization removed cycles from that instruction;")
	fmt.Println(" positive: the bottleneck moved there)")
}

// diffFunctions prints per-function deltas for cross-layout builds.
func diffFunctions(before, after map[string]pics.Stack) {
	names := map[string]bool{}
	for n := range before {
		names[n] = true
	}
	for n := range after {
		names[n] = true
	}
	type row struct {
		name       string
		bTot, aTot float64
	}
	var rows []row
	for n := range names {
		r := row{name: n}
		if st := before[n]; st != nil {
			r.bTot = st.Total()
		}
		if st := after[n]; st != nil {
			r.aTot = st.Total()
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		di := math.Abs(rows[i].aTot - rows[i].bTot)
		dj := math.Abs(rows[j].aTot - rows[j].bTot)
		if di != dj {
			return di > dj
		}
		return rows[i].name < rows[j].name
	})
	fmt.Printf("\n%-24s %12s %12s %12s\n", "function", "before", "after", "delta")
	for _, r := range rows {
		fmt.Printf("%-24s %12.0f %12.0f %+12.0f\n", r.name, r.bTot, r.aTot, r.aTot-r.bTot)
	}
}
