// Command tealint is a static-analysis driver enforcing TEA simulator
// invariants. It runs in two modes:
//
//	tealint [packages]          standalone: load, type-check, and lint the
//	                            named packages (default ./...) in
//	                            dependency order, sharing cross-package
//	                            facts
//	go vet -vettool=tealint ... vet mode: cmd/go invokes tealint with a
//	                            *.cfg JSON file per package (unitchecker
//	                            protocol), which also covers test files;
//	                            facts travel through the vetx files
//
// Individual analyzers can be disabled with -<name>=false; -json
// switches standalone output to a machine-readable diagnostic array.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cachekey"
	"repro/internal/lint/checker"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detiter"
	"repro/internal/lint/detreach"
	"repro/internal/lint/errbound"
	"repro/internal/lint/eventswitch"
	"repro/internal/lint/gojoin"
	"repro/internal/lint/nakedpanic"
	"repro/internal/lint/proberetain"
	"repro/internal/lint/psvwidth"
	"repro/internal/lint/randsource"
)

// version is also cmd/go's vet cache key: bump it whenever analyzer or
// fact semantics change, so stale vetx files are regenerated.
const version = "v0.2.0"

var all = []*analysis.Analyzer{
	eventswitch.Analyzer,
	psvwidth.Analyzer,
	detiter.Analyzer,
	randsource.Analyzer,
	proberetain.Analyzer,
	nakedpanic.Analyzer,
	cachekey.Analyzer,
	detreach.Analyzer,
	ctxflow.Analyzer,
	gojoin.Analyzer,
	errbound.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes the vet tool with -V=full before anything else; it
	// expects a single line "<name> version <ver>" used as a cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("tealint version %s\n", version)
		return 0
	}

	fs := flag.NewFlagSet("tealint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tealint [flags] [package ...]\n")
		fs.PrintDefaults()
	}
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (standalone mode)")
	flagsJSON := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// cmd/go probes -flags to learn which flags it may forward.
	if *flagsJSON {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			if f.Name == "flags" || f.Name == "json" {
				return
			}
			out = append(out, jsonFlag{f.Name, true, f.Usage})
		})
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tealint:", err)
			return 1
		}
		os.Stdout.Write(append(data, '\n'))
		return 0
	}

	var analyzers []*analysis.Analyzer
	known := make([]string, 0, len(all))
	for _, a := range all {
		known = append(known, a.Name)
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	r := &checker.Runner{
		Analyzers:      analyzers,
		KnownAnalyzers: known,
		DirectiveCheck: true,
		JSON:           *jsonOut,
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		code, err := r.Vet(os.Stdout, rest[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "tealint:", err)
		}
		return code
	}

	n, err := r.Standalone(os.Stdout, ".", rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tealint:", err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}
