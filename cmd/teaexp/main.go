// Command teaexp regenerates the paper's tables and figures. Each
// experiment ID maps to one artifact of the evaluation (see DESIGN.md):
//
//	teaexp tab1       Table 1: event sets per technique
//	teaexp tab2       Table 2: architecture configuration
//	teaexp fig1       Figure 1: worked TEA example
//	teaexp fig3       Figure 3: event hierarchies
//	teaexp fig5       Figure 5: PICS error per benchmark
//	teaexp fig6       Figure 6: top-3 instruction PICS (4 benchmarks)
//	teaexp fig7       Figure 7: event count vs impact correlation
//	teaexp fig8       Figure 8: error vs sampling interval
//	teaexp fig9       Figure 9: instruction vs function granularity
//	teaexp fig10      Figure 10: lbm case study PICS
//	teaexp fig11      Figure 11: lbm prefetch-distance sweep
//	teaexp fig12      Figure 12: nab case study
//	teaexp dtea       dispatch-tagged TEA (evaluated, cut for space)
//	teaexp ablation   Figure 3 event-set (PSV width) ladder
//	teaexp multicore  per-core TEA under shared-LLC contention (§3)
//	teaexp jitter     sampler-jitter ablation (aliasing with loop periods)
//	teaexp stat-stall Section 3: unattributed commit stalls
//	teaexp stat-comb  Section 5.2: combined-event fraction
//	teaexp stat-ovh   Section 3: storage/power/performance overheads
//	teaexp all        everything above
//
// Flags: -scale trades evaluation size for runtime; -interval sets the
// sampling period in cycles; -tracecache points the content-addressed
// trace store at a directory (default $TEA_TRACE_CACHE), so repeated
// invocations replay persisted captures instead of re-simulating;
// -checkpoint-interval enables interval-parallel capture (trace
// segments simulated from checkpoints and stitched — byte-identical
// results, lower capture latency on multi-core hosts) with
// -capture-workers bounding its worker pool.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/profio"
	"repro/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	interval := flag.Uint64("interval", 256, "sampling interval in cycles")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	tracecache := flag.String("tracecache", os.Getenv("TEA_TRACE_CACHE"),
		"directory for the persistent trace cache (\"\" disables the disk tier)")
	ckptInterval := flag.Uint64("checkpoint-interval", 0,
		"capture traces as stitched parallel segments from checkpoints every n committed instructions (0: serial capture)")
	captureWorkers := flag.Int("capture-workers", 0,
		"segment worker pool for checkpointed capture (0: GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: teaexp [-scale f] [-interval n] <experiment-id|all>")
		os.Exit(2)
	}

	rc := analysis.DefaultRunConfig()
	rc.Scale = *scale
	rc.Interval = *interval
	rc.Jitter = *interval / 16
	rc.CheckpointInterval = *ckptInterval
	rc.CaptureWorkers = *captureWorkers
	if *tracecache != "" {
		analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, *tracecache))
	}

	id := flag.Arg(0)
	err := profio.Profiled(*cpuprofile, *memprofile, func() error {
		if id == "all" {
			for _, e := range []string{
				"tab1", "tab2", "fig1", "fig3", "fig5", "fig6", "fig7", "fig8",
				"fig9", "fig10", "fig11", "fig12", "dtea", "ablation", "jitter", "multicore",
				"stat-stall", "stat-comb", "stat-ovh",
			} {
				fmt.Printf("================ %s ================\n", e)
				if err := run(e, rc); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		}
		return run(id, rc)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaexp:", err)
		os.Exit(1)
	}
}

// suiteRuns caches the suite for experiments sharing it within one
// "all" invocation.
var suiteRuns []*analysis.BenchRun

func suite(rc analysis.RunConfig) []*analysis.BenchRun {
	if suiteRuns == nil {
		suiteRuns = analysis.RunSuite(rc)
	}
	return suiteRuns
}

func run(id string, rc analysis.RunConfig) error {
	out := os.Stdout
	switch id {
	case "tab1":
		analysis.RenderTable1(out)
	case "tab2":
		analysis.RenderTable2(out, rc.Core)
	case "fig1":
		quickstartExample(out, rc)
	case "fig3":
		analysis.RenderFig3(out)
	case "fig5":
		analysis.RenderFig5(out, analysis.AccuracyStudy(suite(rc)))
	case "fig6":
		for _, br := range suite(rc) {
			for _, name := range analysis.Fig6Benchmarks {
				if br.Workload.Name == name {
					analysis.RenderFig6(out, analysis.TopInstructionPICS(br, 3))
					fmt.Fprintln(out)
				}
			}
		}
	case "fig7":
		analysis.RenderFig7(out, analysis.EventCorrelation(suite(rc)))
	case "fig8":
		iv := rc.Interval
		sweep := []uint64{iv / 4, iv / 2, iv, iv * 2, iv * 4, iv * 8}
		analysis.RenderFig8(out, analysis.FrequencySweep(rc, sweep))
	case "fig9":
		analysis.RenderFig9(out, analysis.GranularityStudy(suite(rc)))
	case "fig10":
		tp := analysis.CaseStudyLBM(rc)
		analysis.RenderFig6(out, tp)
	case "fig11":
		analysis.RenderFig11(out, analysis.PrefetchSweep(rc, []int{0, 1, 2, 3, 4, 5, 6}))
	case "fig12":
		analysis.RenderFig12(out, analysis.CaseStudyNAB(rc))
	case "stat-stall":
		analysis.RenderStallStudy(out, analysis.UnattributedStalls(suite(rc)))
	case "stat-comb":
		analysis.RenderCombined(out, analysis.CombinedEvents(suite(rc)))
	case "jitter":
		analysis.RenderJitter(out, analysis.JitterAblation(rc))
	case "multicore":
		st, err := analysis.Multicore(rc, "fotonik3d", "lbm")
		if err != nil {
			return err
		}
		analysis.RenderMulticore(out, st)
	case "dtea":
		analysis.RenderDTEA(out, analysis.DispatchTaggedTEA(rc))
	case "ablation":
		rows, err := analysis.EventSetAblationStudy(rc, "bwaves")
		if err != nil {
			return err
		}
		analysis.RenderAblation(out, "bwaves", rows)
	case "stat-ovh":
		// The overhead ratio is cost/interval. Measure it at the paper's
		// regime: a perf-style sampling interrupt (~45 cycles to read
		// the CSRs and write the 88-byte sample) against a period that
		// is ~1% of that cost — independent of the accuracy-experiment
		// interval, which is scaled for sample density.
		ovhRC := rc
		ovhRC.Interval = 4096
		ovhRC.Jitter = 256
		analysis.RenderOverhead(out, analysis.MeasureOverhead(ovhRC, "exchange2", 45))
	default:
		return fmt.Errorf("unknown experiment %q (try: tab1 tab2 fig1 fig3 fig5..fig12 dtea ablation jitter multicore stat-stall stat-comb stat-ovh all)", id)
	}
	return nil
}

// quickstartExample reproduces the spirit of Figure 1: a small loop,
// TEA samples, and the resulting PICS.
func quickstartExample(out *os.File, rc analysis.RunConfig) {
	w, err := workloads.ByName("bwaves")
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaexp:", err)
		os.Exit(1)
	}
	small := rc
	small.Scale = 0.05
	br := analysis.RunBenchmark(w, small)
	fmt.Fprintf(out, "Figure 1 (worked example): TEA PICS for a small %s run\n\n", w.Name)
	total := br.Golden.Total()
	for _, pc := range br.TEA.TopInstructions(4) {
		fmt.Fprint(out, br.TEA.RenderInstruction(pc, br.Program, total))
	}
	fmt.Fprintf(out, "\n(each component is a (combination of) performance event(s); 'Base' = no events)\n")
}
