// Command teaserve is the multi-tenant profiling service: a
// long-running HTTP/JSON server that accepts (workload | inline
// program, RunConfig, techniques) jobs, runs them through a bounded
// worker pool with per-tenant quotas and queue admission control, and
// serves PICS profiles back. docs/API.md documents the wire surface;
// docs/OPERATIONS.md covers deployment and tuning.
//
//	teaserve -addr :8315 -workers 8 -tracecache /var/cache/tea
//
// The server prints "teaserve: listening on <host:port>" once the
// listener is up (with -addr :0 the kernel-assigned port appears
// there), and shuts down cleanly on SIGINT/SIGTERM: stop accepting,
// drain in-flight jobs for -drain, then cancel whatever remains and
// exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/serve"
)

func main() {
	def := serve.DefaultConfig()
	addr := flag.String("addr", ":8315", "listen address (\":0\" picks an ephemeral port)")
	workers := flag.Int("workers", def.Workers, "worker-pool size (concurrent jobs)")
	queue := flag.Int("queue", def.QueueDepth, "admission queue depth (full queue => 429)")
	quotaRate := flag.Float64("quota-rate", def.TenantRate, "per-tenant job rate in jobs/sec (<=0 disables quotas)")
	quotaBurst := flag.Float64("quota-burst", def.TenantBurst, "per-tenant token-bucket burst")
	jobTimeout := flag.Duration("job-timeout", def.JobTimeout, "per-job wall-clock limit (0 disables)")
	maxBody := flag.Int64("max-body", def.MaxBodyBytes, "request-body byte cap")
	maxIters := flag.Int("max-iters", def.MaxIters, "inline-program iteration cap")
	maxScale := flag.Float64("max-scale", def.MaxScale, "largest accepted config.scale")
	keepFinished := flag.Int("keep-finished", def.KeepFinished, "finished jobs retained before eviction")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window for in-flight jobs")
	memBudget := flag.Int64("mem-budget", analysis.DefaultStoreBudget, "trace-store memory-tier budget in bytes")
	tracecache := flag.String("tracecache", os.Getenv("TEA_TRACE_CACHE"),
		"directory for the persistent trace cache (\"\" disables the disk tier)")
	journalDir := flag.String("journal-dir", os.Getenv("TEA_JOURNAL_DIR"),
		"directory for the job journal; jobs survive restarts (\"\" runs memory-only)")
	recoverJobs := flag.Bool("recover", true,
		"replay the journal on startup; -recover=false rotates the old WAL aside and starts clean")
	flag.Parse()

	if *journalDir != "" && !*recoverJobs {
		// Starting clean: move the previous WAL out of the way (kept as
		// .prev for post-mortems) so New opens an empty journal. Result
		// files are only reachable through WAL records, so they are
		// simply orphaned and overwritten as IDs are reused.
		wal := journal.WALPath(*journalDir)
		if err := os.Rename(wal, wal+".prev"); err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "teaserve: -recover=false:", err)
			os.Exit(1)
		}
	}

	analysis.SetTraceStore(analysis.NewTraceStore(*memBudget, *tracecache))
	s, err := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		TenantRate:   *quotaRate,
		TenantBurst:  *quotaBurst,
		JobTimeout:   *jobTimeout,
		MaxBodyBytes: *maxBody,
		MaxIters:     *maxIters,
		MaxScale:     *maxScale,
		KeepFinished: *keepFinished,
		JournalDir:   *journalDir,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		// A journal that fails to open (mid-stream corruption, an alien
		// file) is an operator decision, not something to guess at:
		// refuse to start rather than silently discard job history.
		fmt.Fprintln(os.Stderr, "teaserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaserve:", err)
		os.Exit(1)
	}
	fmt.Printf("teaserve: listening on %s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	poolDone := make(chan struct{})
	go func() { s.Run(runCtx); close(poolDone) }()

	select {
	case <-sigCtx.Done():
		fmt.Println("teaserve: signal received, shutting down")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "teaserve: listener failed:", err)
		cancelRun()
		<-poolDone
		os.Exit(1)
	}

	// Stop accepting first, so every already-admitted poller gets its
	// response; then give in-flight jobs the drain window before the
	// worker contexts are cancelled.
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "teaserve: shutdown:", err)
	}
	deadline := time.Now().Add(*drain)
	for !s.Idle() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	cancelRun()
	<-poolDone
	<-serveErr // Serve has returned http.ErrServerClosed by now
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "teaserve: journal close:", err)
	}
	fmt.Println("teaserve: shutdown complete")
}
