// Command teaprof profiles one benchmark of the suite with a chosen
// performance-analysis technique and prints the resulting
// Per-Instruction Cycle Stacks, like the PICS visualization tool of
// Section 3.
//
//	teaprof -bench lbm -tech TEA -top 10
//	teaprof -bench nab -tech IBS
//	teaprof -bench omnetpp -tech golden -funcs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/profio"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "lbm", "benchmark to profile ("+strings.Join(workloads.Names(), ", ")+")")
	tech := flag.String("tech", "TEA", "technique: TEA, NCI-TEA, IBS, SPE, RIS, golden")
	top := flag.Int("top", 10, "number of instructions to print")
	funcs := flag.Bool("funcs", false, "aggregate at function granularity")
	bars := flag.Bool("bars", false, "render cycle stacks as ASCII bars")
	asJSON := flag.Bool("json", false, "emit the full profile as JSON")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	interval := flag.Uint64("interval", 256, "sampling interval in cycles")
	seed := flag.Uint64("seed", 1, "sample-clock seed (recorded in the output for replay)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaprof:", err)
		os.Exit(1)
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = *scale
	rc.Interval = *interval
	rc.Jitter = *interval / 16
	rc.Seed = *seed

	var br *analysis.BenchRun
	if err := profio.Profiled(*cpuprofile, *memprofile, func() error {
		br = analysis.RunBenchmark(w, rc)
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "teaprof:", err)
		os.Exit(1)
	}
	var prof *pics.Profile
	switch *tech {
	case "TEA":
		prof = br.TEA
	case "NCI-TEA":
		prof = br.NCITEA
	case "IBS":
		prof = br.IBS
	case "SPE":
		prof = br.SPE
	case "RIS":
		prof = br.RIS
	case "golden":
		prof = br.Golden
	default:
		fmt.Fprintf(os.Stderr, "teaprof: unknown technique %q\n", *tech)
		os.Exit(1)
	}

	if *asJSON {
		if err := prof.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "teaprof:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s: %d cycles, %d instructions committed, IPC %.2f\n",
		w.Name, br.Stats.Cycles, br.Stats.Committed, br.Stats.IPC())
	fmt.Printf("behavior: %s\n", w.Behavior)
	fmt.Printf("technique: %s (error vs golden: %.1f%%)\n\n",
		prof.Name, 100*pics.Error(prof, br.Golden))

	total := br.Golden.Total()
	if *funcs {
		byFn := prof.ByFunction(br.Program)
		type row struct {
			name  string
			stack pics.Stack
		}
		rows := make([]row, 0, len(byFn))
		for name, st := range byFn {
			rows = append(rows, row{name, st})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].stack.Total() > rows[j].stack.Total() })
		for i, r := range rows {
			if i >= *top {
				break
			}
			fmt.Printf("  %-24s height %.0f cycles (%.2f%%)\n%s",
				r.name, r.stack.Total(), 100*r.stack.Total()/total, r.stack.Render(total))
		}
		return
	}
	for _, pc := range prof.TopInstructions(*top) {
		if *bars {
			in := br.Program.Inst(pc)
			fmt.Printf("  %#08x  %-28s [%s]\n%s", pc, in.String(),
				br.Program.FuncOfPC(pc), prof.Insts[pc].RenderBars(total, 50))
			continue
		}
		fmt.Print(prof.RenderInstruction(pc, br.Program, total))
	}
}
