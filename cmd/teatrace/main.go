// Command teatrace records a benchmark's execution as a binary cycle
// trace, replays traces offline — the TraceDoctor capture-once /
// analyze-many workflow of Section 4 as a standalone tool — and
// inspects a trace's codec statistics.
//
//	teatrace -record lbm.trace -bench lbm -scale 0.5
//	teatrace -replay lbm.trace -tech TEA -top 5
//	teatrace -replay lbm.trace -tech IBS
//	teatrace -stats lbm.trace
//	teatrace -stats cache/3fd2...a1.tea -json
//
// -stats accepts either a raw trace stream or a tracestore disk-tier
// entry (the TEAC framing and stats envelope are unwrapped
// automatically) and prints the per-record-kind byte histogram, the
// pattern-table hit rate, and the v4-vs-v3 compression ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

func main() {
	record := flag.String("record", "", "record the benchmark to this trace file")
	replay := flag.String("replay", "", "replay this trace file")
	stats := flag.String("stats", "", "print codec statistics for this trace file or tracestore entry")
	bench := flag.String("bench", "lbm", "benchmark to record")
	tech := flag.String("tech", "TEA", "technique for replay: TEA, NCI-TEA, IBS, SPE, RIS")
	interval := flag.Uint64("interval", 256, "sampling interval in cycles")
	top := flag.Int("top", 5, "instructions to print after replay")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	asJSON := flag.Bool("json", false, "emit -stats output as JSON")
	flag.Parse()

	switch {
	case *record != "" && *replay == "" && *stats == "":
		if err := doRecord(*record, *bench, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "teatrace:", err)
			os.Exit(1)
		}
	case *replay != "" && *record == "" && *stats == "":
		if err := doReplay(*replay, *tech, *interval, *top); err != nil {
			fmt.Fprintln(os.Stderr, "teatrace:", err)
			os.Exit(1)
		}
	case *stats != "" && *record == "" && *replay == "":
		if err := doStats(*stats, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "teatrace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: teatrace -record FILE -bench NAME | teatrace -replay FILE -tech NAME | teatrace -stats FILE [-json]")
		os.Exit(2)
	}
}

// unwrapStream accepts a raw v4 trace stream, a tracestore disk-tier
// entry (TEAC framing + stats envelope), or a bare cache entry (stats
// envelope only) and returns the trace stream inside.
func unwrapStream(raw []byte) ([]byte, string) {
	if len(raw) >= 5 && string(raw[:4]) == "TEAT" {
		return raw, "raw trace"
	}
	if _, payload, err := tracestore.PayloadFromDiskEntry(raw); err == nil {
		if _, data, err := analysis.DecodeCachedEntry(payload); err == nil {
			return data, "tracestore disk entry"
		}
	}
	if _, data, err := analysis.DecodeCachedEntry(raw); err == nil {
		return data, "cache entry"
	}
	return raw, "raw trace"
}

func doStats(path string, asJSON bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data, kind := unwrapStream(raw)
	st, err := trace.ScanStats(data)
	if err != nil {
		return err
	}
	if asJSON {
		out := struct {
			*trace.CodecStats
			PatternHitRate   float64 `json:"pattern_hit_rate"`
			CompressionRatio float64 `json:"compression_ratio"`
		}{st, st.PatternHitRate(), st.CompressionRatio()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("%s (%s): %d cycles, %d records in %d blocks\n",
		path, kind, st.TotalCycles, st.Records, st.Blocks)
	fmt.Printf("encoded %d bytes, logical (v3-equivalent) %d bytes -> %.2fx compression\n",
		st.EncodedBytes, st.LogicalBytes, st.CompressionRatio())
	fmt.Printf("pattern table: %d matched of %d records (%.1f%% hit rate), %d match + %d literal tokens\n",
		st.MatchedRecords, st.Records-1, 100*st.PatternHitRate(), st.MatchTokens, st.LitTokens)
	fmt.Printf("\n%-10s %12s %16s\n", "kind", "records", "logical bytes")
	for _, k := range []string{"fetch", "dispatch", "commit", "squash", "cycle"} {
		fmt.Printf("%-10s %12d %16d\n", k, st.KindRecords[k], st.KindBytes[k])
	}
	fmt.Printf("\n%-10s %12s\n", "column", "bytes")
	fmt.Printf("%-10s %12d\n", "tokens", st.TokenBytes)
	for _, name := range trace.ColumnNames {
		fmt.Printf("%-10s %12d\n", name, st.Columns[name])
	}
	return nil
}

func doRecord(path, bench string, scale float64) error {
	w, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	iters := int(float64(w.DefaultIters) * scale)
	if iters < 2 {
		iters = 2
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	c := cpu.New(cpu.DefaultConfig(), w.Build(iters))
	tw := trace.NewWriter(f)
	c.Attach(tw)
	stats := c.Run()
	if tw.Err() != nil {
		return tw.Err()
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d cycles, %d instructions -> %s (%d bytes, %.1f B/cycle, %d records)\n",
		bench, stats.Cycles, stats.Committed, path, info.Size(),
		float64(info.Size())/float64(stats.Cycles), tw.Records)
	return nil
}

func doReplay(path, tech string, interval uint64, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	golden := core.NewGolden(nil)
	var prof interface{ Profile() *pics.Profile }
	jitter := interval / 16
	switch tech {
	case "TEA":
		cfg := core.DefaultConfig()
		cfg.IntervalCycles = interval
		cfg.JitterCycles = jitter
		prof = core.NewTEA(nil, cfg)
	case "NCI-TEA":
		prof = profilers.NewNCITEA(interval, jitter, 3)
	case "IBS":
		prof = profilers.NewIBS(interval, jitter, 4)
	case "SPE":
		prof = profilers.NewSPE(interval, jitter, 5)
	case "RIS":
		prof = profilers.NewRIS(interval, jitter, 6)
	default:
		return fmt.Errorf("unknown technique %q", tech)
	}

	cycles, err := trace.Replay(f, golden, prof.(cpu.Probe))
	if err != nil {
		return err
	}
	p := prof.Profile()
	fmt.Printf("replayed %d cycles; %s error vs golden: %.1f%%\n\n",
		cycles, p.Name, 100*pics.Error(p, golden.Profile()))
	total := golden.Profile().Total()
	fmt.Printf("top instructions (%s):\n", p.Name)
	for _, pc := range p.TopInstructions(top) {
		st := p.Insts[pc]
		fmt.Printf("  %#08x  height %6.2f%%\n%s", pc, 100*st.Total()/total, st.RenderBars(total, 40))
	}
	return nil
}
