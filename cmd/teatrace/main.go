// Command teatrace records a benchmark's execution as a binary cycle
// trace and replays traces offline — the TraceDoctor capture-once /
// analyze-many workflow of Section 4 as a standalone tool.
//
//	teatrace -record lbm.trace -bench lbm -scale 0.5
//	teatrace -replay lbm.trace -tech TEA -top 5
//	teatrace -replay lbm.trace -tech IBS
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	record := flag.String("record", "", "record the benchmark to this trace file")
	replay := flag.String("replay", "", "replay this trace file")
	bench := flag.String("bench", "lbm", "benchmark to record")
	tech := flag.String("tech", "TEA", "technique for replay: TEA, NCI-TEA, IBS, SPE, RIS")
	interval := flag.Uint64("interval", 256, "sampling interval in cycles")
	top := flag.Int("top", 5, "instructions to print after replay")
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	flag.Parse()

	switch {
	case *record != "" && *replay == "":
		if err := doRecord(*record, *bench, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "teatrace:", err)
			os.Exit(1)
		}
	case *replay != "" && *record == "":
		if err := doReplay(*replay, *tech, *interval, *top); err != nil {
			fmt.Fprintln(os.Stderr, "teatrace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: teatrace -record FILE -bench NAME | teatrace -replay FILE -tech NAME")
		os.Exit(2)
	}
}

func doRecord(path, bench string, scale float64) error {
	w, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	iters := int(float64(w.DefaultIters) * scale)
	if iters < 2 {
		iters = 2
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	c := cpu.New(cpu.DefaultConfig(), w.Build(iters))
	tw := trace.NewWriter(f)
	c.Attach(tw)
	stats := c.Run()
	if tw.Err() != nil {
		return tw.Err()
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d cycles, %d instructions -> %s (%d bytes, %.1f B/cycle, %d records)\n",
		bench, stats.Cycles, stats.Committed, path, info.Size(),
		float64(info.Size())/float64(stats.Cycles), tw.Records)
	return nil
}

func doReplay(path, tech string, interval uint64, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	golden := core.NewGolden(nil)
	var prof interface{ Profile() *pics.Profile }
	jitter := interval / 16
	switch tech {
	case "TEA":
		cfg := core.DefaultConfig()
		cfg.IntervalCycles = interval
		cfg.JitterCycles = jitter
		prof = core.NewTEA(nil, cfg)
	case "NCI-TEA":
		prof = profilers.NewNCITEA(interval, jitter, 3)
	case "IBS":
		prof = profilers.NewIBS(interval, jitter, 4)
	case "SPE":
		prof = profilers.NewSPE(interval, jitter, 5)
	case "RIS":
		prof = profilers.NewRIS(interval, jitter, 6)
	default:
		return fmt.Errorf("unknown technique %q", tech)
	}

	cycles, err := trace.Replay(f, golden, prof.(cpu.Probe))
	if err != nil {
		return err
	}
	p := prof.Profile()
	fmt.Printf("replayed %d cycles; %s error vs golden: %.1f%%\n\n",
		cycles, p.Name, 100*pics.Error(p, golden.Profile()))
	total := golden.Profile().Total()
	fmt.Printf("top instructions (%s):\n", p.Name)
	for _, pc := range p.TopInstructions(top) {
		st := p.Insts[pc]
		fmt.Printf("  %#08x  height %6.2f%%\n%s", pc, 100*st.Total()/total, st.RenderBars(total, 40))
	}
	return nil
}
