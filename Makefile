GO      ?= go
BINDIR  := bin
TEALINT := $(BINDIR)/tealint

.PHONY: all build test race vet lint check chaos fuzz bench bench-checkpoint bench-codec serve smoke load clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

$(TEALINT): FORCE
	$(GO) build -o $(TEALINT) ./cmd/tealint

.PHONY: FORCE
FORCE:

# lint runs the TEA invariant suite in both modes — standalone over the
# non-test source and through `go vet -vettool` to cover test files —
# then smokes the machine-readable mode: `tealint -json` output must
# parse back into the checker's wire type and be empty.
lint: $(TEALINT)
	$(TEALINT) ./...
	$(GO) vet -vettool=$(CURDIR)/$(TEALINT) ./...
	$(TEALINT) -json ./... | $(GO) run ./scripts/jsonsmoke

check:
	./scripts/check.sh

# chaos runs the fault-injection sweeps: every mutated trace and
# pathological program must yield byte-identical profiles or a typed
# error — never a crash, hang, or silently wrong result — and the
# -disk sweep attacks the job journal (torn tail, bit flip, ENOSPC,
# EIO, slow I/O) expecting recovery or degraded mode, never wrong
# bytes. Fixed seed, so a failure reproduces exactly.
chaos:
	$(GO) build -o $(BINDIR)/teachaos ./cmd/teachaos
	$(BINDIR)/teachaos -seed 1 -workload all -scale 0.05
	$(BINDIR)/teachaos -disk

# fuzz gives each robustness fuzz target a short budget (CI smoke; run
# longer locally with go test -fuzz).
fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReplay -fuzztime=10s
	$(GO) test ./internal/pics -run='^$$' -fuzz=FuzzProfileJSON -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzSubmit -fuzztime=10s

# serve builds and starts the profiling service on its default port
# (flags via SERVE_FLAGS, e.g. make serve SERVE_FLAGS="-addr :9000").
# docs/OPERATIONS.md is the operator guide.
serve:
	$(GO) build -o $(BINDIR)/teaserve ./cmd/teaserve
	$(BINDIR)/teaserve $(SERVE_FLAGS)

# smoke runs the end-to-end server checks against a freshly built
# binary: every endpoint, byte-identical profiles, clean SIGTERM —
# then the crash-recovery smoke (SIGKILL mid-run, restart on the same
# journal, byte-identical recovered results).
smoke:
	$(GO) build -o $(BINDIR)/teaserve ./cmd/teaserve
	$(GO) run ./scripts/servesmoke -bin $(BINDIR)/teaserve
	$(GO) run ./scripts/crashsmoke -bin $(BINDIR)/teaserve

# load drives a load test against an already-running server (start one
# with `make serve SERVE_FLAGS="-queue 2048 -quota-rate 0"`) and writes
# the BENCH_<date>_serve.json latency/dedup snapshot.
load:
	$(GO) build -o $(BINDIR)/teaload ./cmd/teaload
	$(BINDIR)/teaload $(LOAD_FLAGS)

# bench runs the figure/table benchmark harness with -benchmem and
# writes BENCH_<date>.json (see scripts/bench.sh for BENCHTIME/LABEL).
bench:
	./scripts/bench.sh

# bench-checkpoint is the before/after evidence for interval-parallel
# capture: the same BenchmarkSuiteCapture run serially and with
# checkpointed capture (knobs via env, mirroring teaexp's
# -checkpoint-interval/-capture-workers flags). teadiff then gates the
# deterministic trace metrics — the stitched suite capture must be
# bit-identical to serial. ns/op is the wall-clock column and is never
# gated: the speedup needs idle cores, and a 1-core host legitimately
# shows overhead instead.
CKPT_INTERVAL ?= 50000
CKPT_WORKERS  ?= 4
BENCH_DATE    := $(shell date +%Y-%m-%d)
bench-checkpoint:
	$(GO) test -bench='^BenchmarkSuiteCapture$$' -benchmem -benchtime=1x -timeout 30m . \
		| $(GO) run ./cmd/teabench -label checkpoint-baseline \
			-o BENCH_$(BENCH_DATE)_checkpoint-baseline.json
	TEA_CHECKPOINT_INTERVAL=$(CKPT_INTERVAL) TEA_CAPTURE_WORKERS=$(CKPT_WORKERS) \
		$(GO) test -bench='^BenchmarkSuiteCapture$$' -benchmem -benchtime=1x -timeout 30m . \
		| $(GO) run ./cmd/teabench -label checkpoint \
			-o BENCH_$(BENCH_DATE)_checkpoint.json
	$(GO) run ./cmd/teadiff -mode bench \
		-baseline BENCH_$(BENCH_DATE)_checkpoint-baseline.json \
		-current BENCH_$(BENCH_DATE)_checkpoint.json

# bench-codec is the committed evidence for trace format v4: encode and
# decode versus the retired v3 codec over the same pre-recorded event
# sequence (no simulation in the timed loop), plus the suite-wide byte
# totals. teadiff gates the deterministic metrics — byte totals, record
# counts, compression ratios, and the v4 digest halves must be
# bit-identical to the committed baseline; ns/op carries the
# encode/decode throughput story and is informational.
CODEC_BASELINE ?= BENCH_2026-08-08_codec.json
bench-codec:
	$(GO) test ./internal/trace -run='^$$' -bench='^BenchmarkCodec' -benchmem -benchtime=10x -timeout 30m \
		| $(GO) run ./cmd/teabench -label codec -o BENCH_$(BENCH_DATE)_codec.json
	$(GO) run ./cmd/teadiff -mode bench \
		-baseline $(CODEC_BASELINE) -current BENCH_$(BENCH_DATE)_codec.json

clean:
	rm -rf $(BINDIR)
