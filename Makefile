GO      ?= go
BINDIR  := bin
TEALINT := $(BINDIR)/tealint

.PHONY: all build test race vet lint check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

$(TEALINT): FORCE
	$(GO) build -o $(TEALINT) ./cmd/tealint

.PHONY: FORCE
FORCE:

# lint runs the TEA invariant suite in both modes: standalone over the
# non-test source, and through `go vet -vettool` to cover test files.
lint: $(TEALINT)
	$(TEALINT) ./...
	$(GO) vet -vettool=$(CURDIR)/$(TEALINT) ./...

check:
	./scripts/check.sh

# bench runs the figure/table benchmark harness with -benchmem and
# writes BENCH_<date>.json (see scripts/bench.sh for BENCHTIME/LABEL).
bench:
	./scripts/bench.sh

clean:
	rm -rf $(BINDIR)
