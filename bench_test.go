// Package repro_test is the benchmark harness: one testing.B per table
// and figure of the paper's evaluation (run with `go test -bench=.`).
// Each benchmark regenerates its artifact at a reduced scale and
// reports the headline numbers as custom metrics, so `-benchmem` output
// doubles as a summary of the reproduction (EXPERIMENTS.md records the
// full-scale runs from cmd/teaexp).
package repro_test

import (
	"bytes"
	"context"
	"io"
	"os"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// init honors TEA_TRACE_CACHE for the whole harness, mirroring
// cmd/teaexp's -tracecache flag: with it set, a second bench run
// replays the first run's persisted captures instead of re-simulating.
func init() {
	if dir := os.Getenv("TEA_TRACE_CACHE"); dir != "" {
		analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, dir))
	}
}

// benchConfig returns the scaled configuration used by the harness.
func benchConfig() analysis.RunConfig {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.25
	rc.Interval = 192
	rc.Jitter = 16
	return rc
}

// BenchmarkTable1EventSets checks/renders the Table 1 event matrix.
func BenchmarkTable1EventSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		analysis.RenderTable1(io.Discard)
	}
	b.ReportMetric(float64(events.TEASet.Bits()), "tea_psv_bits")
	b.ReportMetric(float64(events.IBSSet.Bits()), "ibs_psv_bits")
}

// BenchmarkTable2Config renders the architecture configuration.
func BenchmarkTable2Config(b *testing.B) {
	cfg := cpu.DefaultConfig()
	for i := 0; i < b.N; i++ {
		analysis.RenderTable2(io.Discard, cfg)
	}
	b.ReportMetric(float64(cfg.ROBEntries), "rob_entries")
}

// BenchmarkFig1Quickstart runs the worked example: a small kernel under
// TEA and the golden reference.
func BenchmarkFig1Quickstart(b *testing.B) {
	rc := benchConfig()
	rc.Scale = 0.05
	w, _ := workloads.ByName("bwaves")
	var err float64
	for i := 0; i < b.N; i++ {
		br := analysis.RunBenchmark(w, rc)
		err = pics.Error(br.TEA, br.Golden)
	}
	b.ReportMetric(100*err, "tea_err_%")
}

// BenchmarkFig5Accuracy regenerates the headline accuracy comparison.
func BenchmarkFig5Accuracy(b *testing.B) {
	rc := benchConfig()
	var avg analysis.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows := analysis.AccuracyStudy(analysis.RunSuite(rc))
		avg = rows[len(rows)-1]
	}
	b.ReportMetric(100*avg.Errors[profilers.NameTEA], "tea_err_%")
	b.ReportMetric(100*avg.Errors[profilers.NameNCITEA], "nci_err_%")
	b.ReportMetric(100*avg.Errors[profilers.NameIBS], "ibs_err_%")
	b.ReportMetric(100*avg.Errors[profilers.NameSPE], "spe_err_%")
	b.ReportMetric(100*avg.Errors[profilers.NameRIS], "ris_err_%")
}

// BenchmarkFig6TopPICS regenerates the per-instruction PICS panels.
func BenchmarkFig6TopPICS(b *testing.B) {
	rc := benchConfig()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, name := range analysis.Fig6Benchmarks {
			w, _ := workloads.ByName(name)
			br := analysis.RunBenchmark(w, rc)
			tp := analysis.TopInstructionPICS(br, 3)
			analysis.RenderFig6(io.Discard, tp)
			// Height error of the #1 instruction for TEA.
			pc := tp.PCs[0]
			g := tp.Golden.Insts[pc].Total()
			d := tp.TEA.Insts[pc].Total() - g
			if d < 0 {
				d = -d
			}
			if rel := d / g; rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(100*worst, "tea_top1_height_err_%")
}

// BenchmarkFig7Correlation regenerates the event-count-vs-impact
// correlation study.
func BenchmarkFig7Correlation(b *testing.B) {
	rc := benchConfig()
	var res []analysis.CorrelationResult
	for i := 0; i < b.N; i++ {
		res = analysis.EventCorrelation(analysis.RunSuite(rc))
	}
	for _, r := range res {
		switch r.Event {
		case events.FLMB:
			b.ReportMetric(r.Box.Median, "flmb_median_r")
		case events.STL1:
			b.ReportMetric(r.Box.Median, "stl1_median_r")
		case events.DRSQ:
			b.ReportMetric(r.Box.Median, "drsq_median_r")
		default:
			// only the three headline events from Fig. 7 are reported
		}
	}
}

// BenchmarkFig8FrequencySweep regenerates the sampling-frequency
// sensitivity study.
func BenchmarkFig8FrequencySweep(b *testing.B) {
	rc := benchConfig()
	rc.Scale = 0.1
	// A fresh, memory-only store isolates the capture accounting from
	// the other benchmarks' shared-store traffic so the tentpole
	// invariant is checkable: sweeping N intervals over b.N iterations
	// must capture each workload exactly once, everything else replays.
	prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
	defer analysis.SetTraceStore(prev)
	start := analysis.CaptureCount()
	var pts []analysis.FrequencyPoint
	for i := 0; i < b.N; i++ {
		pts = analysis.FrequencySweep(rc, []uint64{96, 192, 384, 768})
	}
	if got, want := analysis.CaptureCount()-start, uint64(len(workloads.All())); got != want {
		b.Fatalf("frequency sweep performed %d captures, want exactly %d (one per workload, shared across intervals and iterations)", got, want)
	}
	b.ReportMetric(100*pts[0].Average[profilers.NameTEA], "tea_err_fast_%")
	b.ReportMetric(100*pts[len(pts)-1].Average[profilers.NameTEA], "tea_err_slow_%")
}

// BenchmarkFig9Granularity regenerates the granularity comparison.
func BenchmarkFig9Granularity(b *testing.B) {
	rc := benchConfig()
	var rows []analysis.GranularityRow
	for i := 0; i < b.N; i++ {
		rows = analysis.GranularityStudy(analysis.RunSuite(rc))
	}
	for _, r := range rows {
		if r.Technique == profilers.NameTEA {
			b.ReportMetric(100*r.Instruction, "tea_inst_err_%")
			b.ReportMetric(100*r.Block, "tea_block_err_%")
			b.ReportMetric(100*r.Function, "tea_func_err_%")
		}
		if r.Technique == profilers.NameIBS {
			b.ReportMetric(100*r.Function, "ibs_func_err_%")
		}
	}
}

// BenchmarkFig10LBM regenerates the lbm case-study PICS.
func BenchmarkFig10LBM(b *testing.B) {
	rc := benchConfig()
	var tp analysis.TopPICS
	for i := 0; i < b.N; i++ {
		tp = analysis.CaseStudyLBM(rc)
		analysis.RenderFig6(io.Discard, tp)
	}
	// Fraction of the top instruction's golden stack on LLC misses.
	pc := tp.PCs[0]
	st := tp.Golden.Insts[pc]
	llc := 0.0
	for sig, v := range st {
		if sig.Has(events.STLLC) {
			llc += v
		}
	}
	b.ReportMetric(100*llc/st.Total(), "top1_llc_share_%")
}

// BenchmarkFig11PrefetchSweep regenerates the prefetch-distance sweep.
func BenchmarkFig11PrefetchSweep(b *testing.B) {
	rc := benchConfig()
	var pts []analysis.PrefetchPoint
	for i := 0; i < b.N; i++ {
		pts = analysis.PrefetchSweep(rc, []int{0, 1, 2, 3, 4, 5, 6})
	}
	best := 0.0
	for _, pt := range pts {
		if pt.Speedup > best {
			best = pt.Speedup
		}
	}
	b.ReportMetric(best, "best_speedup_x")
}

// BenchmarkFig12NAB regenerates the nab case study.
func BenchmarkFig12NAB(b *testing.B) {
	rc := benchConfig()
	var st analysis.NABStudy
	for i := 0; i < b.N; i++ {
		st = analysis.CaseStudyNAB(rc)
	}
	b.ReportMetric(st.FastMathSpeedup, "fastmath_speedup_x")
}

// BenchmarkStatStalls regenerates the Section 3 unattributed-stall
// statistic.
func BenchmarkStatStalls(b *testing.B) {
	rc := benchConfig()
	var st analysis.StallStudy
	for i := 0; i < b.N; i++ {
		st = analysis.UnattributedStalls(analysis.RunSuite(rc))
	}
	b.ReportMetric(st.EventFreeP99, "eventfree_p99_cycles")
}

// BenchmarkStatCombined regenerates the combined-event fraction.
func BenchmarkStatCombined(b *testing.B) {
	rc := benchConfig()
	var cs analysis.CombinedStudy
	for i := 0; i < b.N; i++ {
		cs = analysis.CombinedEvents(analysis.RunSuite(rc))
	}
	b.ReportMetric(100*cs.Fraction, "combined_%")
}

// BenchmarkStatOverhead regenerates the overhead study.
func BenchmarkStatOverhead(b *testing.B) {
	rc := benchConfig()
	rc.Interval = 4096
	rc.Jitter = 256
	var o analysis.OverheadStudy
	for i := 0; i < b.N; i++ {
		o = analysis.MeasureOverhead(rc, "exchange2", 40)
	}
	b.ReportMetric(100*o.PerfOverhead, "perf_overhead_%")
	b.ReportMetric(float64(o.Storage.TotalBytes()), "storage_bytes")
	b.ReportMetric(o.Storage.PowerMilliwatts(), "power_mw")
}

// BenchmarkCoreSimulation measures raw simulator throughput (cycles
// simulated per wall-clock second) with no probes attached.
func BenchmarkCoreSimulation(b *testing.B) {
	w, _ := workloads.ByName("fotonik3d")
	var cycles uint64
	for i := 0; i < b.N; i++ {
		c := cpu.New(cpu.DefaultConfig(), w.Build(2000))
		st := c.Run()
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

// BenchmarkGoldenReference measures the per-cycle attribution overhead
// of the golden reference.
func BenchmarkGoldenReference(b *testing.B) {
	w, _ := workloads.ByName("fotonik3d")
	for i := 0; i < b.N; i++ {
		c := cpu.New(cpu.DefaultConfig(), w.Build(2000))
		g := core.NewGolden(c)
		c.Attach(g)
		c.Run()
	}
}

// BenchmarkDispatchTaggedTEA regenerates the Section 5 cut experiment:
// TEA's events with IBS's dispatch tagging.
func BenchmarkDispatchTaggedTEA(b *testing.B) {
	rc := benchConfig()
	var rows []analysis.DTEARow
	for i := 0; i < b.N; i++ {
		rows = analysis.DispatchTaggedTEA(rc)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(100*avg.TEA, "tea_err_%")
	b.ReportMetric(100*avg.DTEA, "dtea_err_%")
	b.ReportMetric(100*avg.IBS, "ibs_err_%")
}

// BenchmarkEventSetAblation regenerates the Figure 3 PSV-width ladder.
func BenchmarkEventSetAblation(b *testing.B) {
	rc := benchConfig()
	var rows []analysis.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = analysis.EventSetAblationStudy(rc, "bwaves")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].Components), "tea_components")
	b.ReportMetric(float64(rows[0].Components), "tip_components")
}

// BenchmarkTraceCaptureReplay measures the TraceDoctor-style capture
// and offline-replay substrate.
func BenchmarkTraceCaptureReplay(b *testing.B) {
	w, _ := workloads.ByName("bwaves")
	var perCycle float64
	for i := 0; i < b.N; i++ {
		c := cpu.New(cpu.DefaultConfig(), w.Build(1500))
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		c.Attach(tw)
		st := c.Run()
		g := core.NewGolden(nil)
		if _, err := trace.Replay(bytes.NewReader(buf.Bytes()), g); err != nil {
			b.Fatal(err)
		}
		perCycle = float64(buf.Len()) / float64(st.Cycles)
	}
	b.ReportMetric(perCycle, "trace_bytes/cycle")
}

// BenchmarkMulticoreContention regenerates the Section 3 multi-core
// study: per-core TEA accuracy under shared-LLC/DRAM contention.
func BenchmarkMulticoreContention(b *testing.B) {
	rc := benchConfig()
	var st analysis.MulticoreStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = analysis.Multicore(rc, "fotonik3d", "lbm")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.Slowdown, "victim_slowdown_x")
	b.ReportMetric(100*st.TEAErrors[0], "victim_tea_err_%")
}

// BenchmarkJitterAblation regenerates the sampler-jitter design-choice
// ablation (DESIGN.md: deterministic jitter decorrelates the sample
// clock from loop periods).
func BenchmarkJitterAblation(b *testing.B) {
	rc := benchConfig()
	rc.Scale = 0.1
	var rows []analysis.JitterRow
	for i := 0; i < b.N; i++ {
		rows = analysis.JitterAblation(rc)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(100*avg.WithJitter, "jittered_err_%")
	b.ReportMetric(100*avg.WithoutJitter, "fixed_err_%")
}

// BenchmarkSuiteCapture measures raw trace capture for the whole suite
// under the capture-parallelism knobs from the environment
// (TEA_CHECKPOINT_INTERVAL / TEA_CAPTURE_WORKERS, mirroring cmd/teaexp
// flags; unset means serial capture). `make bench-checkpoint` runs it
// both ways into BENCH_<date>_checkpoint-baseline.json and
// BENCH_<date>_checkpoint.json. Every reported metric is a
// deterministic function of the captured trace bytes, so `teadiff
// -mode bench` passing on the pair proves the stitched captures are
// byte-identical to serial; ns/op carries the wall-clock story and is
// informational (a single-core host shows overhead, not speedup).
func BenchmarkSuiteCapture(b *testing.B) {
	ckptInterval, _ := strconv.ParseUint(os.Getenv("TEA_CHECKPOINT_INTERVAL"), 10, 64)
	workers, _ := strconv.Atoi(os.Getenv("TEA_CAPTURE_WORKERS"))
	rc := benchConfig()
	var traceBytes, cycles, digest uint64
	for i := 0; i < b.N; i++ {
		traceBytes, cycles = 0, 0
		digest = 14695981039346656037 // FNV-1a offset basis
		for _, w := range workloads.All() {
			p := w.Build(rc.Iters(w))
			data, st, err := analysis.CaptureTraceCheckpointed(
				context.Background(), p, rc, ckptInterval, workers)
			if err != nil {
				b.Fatal(err)
			}
			traceBytes += uint64(len(data))
			cycles += st.Cycles
			for _, by := range data {
				digest = (digest ^ uint64(by)) * 1099511628211
			}
		}
	}
	b.ReportMetric(float64(traceBytes), "trace_bytes")
	b.ReportMetric(float64(cycles), "suite_cycles")
	// Two exact-in-float64 halves: equal halves mean equal 64-bit
	// digests, i.e. byte-identical suite traces.
	b.ReportMetric(float64(digest>>32), "trace_fnv_hi")
	b.ReportMetric(float64(digest&0xffffffff), "trace_fnv_lo")
}
