// Command servesmoke is the gate's end-to-end server check: it boots a
// real teaserve binary on an ephemeral port with every documented flag
// set, drives each endpoint of the /v1 API over actual TCP, verifies
// the raw profile bytes match an in-process analysis.RunProgram of the
// same job, and finishes by proving a SIGTERM shutdown is clean (exit
// code 0, drained pool, "shutdown complete" on stdout).
//
//	go build -o bin/teaserve ./cmd/teaserve
//	go run ./scripts/servesmoke -bin bin/teaserve
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/workloads"
)

func main() {
	bin := flag.String("bin", "bin/teaserve", "teaserve binary to smoke")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run(bin string) error {
	logPath, err := os.CreateTemp("", "teaserve-log-*")
	if err != nil {
		return err
	}
	defer os.Remove(logPath.Name())
	cacheDir, err := os.MkdirTemp("", "teaserve-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	// Every documented flag is exercised, so a flag that disappears (or
	// breaks) fails the gate — the docs and the binary cannot drift.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "32",
		"-quota-rate", "200",
		"-quota-burst", "100",
		"-job-timeout", "60s",
		"-max-body", "65536",
		"-max-iters", "65536",
		"-max-scale", "2",
		"-keep-finished", "128",
		"-drain", "5s",
		"-mem-budget", "16777216",
		"-tracecache", cacheDir,
	)
	cmd.Stdout = logPath
	cmd.Stderr = logPath
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	defer cmd.Process.Kill()

	base, err := waitListening(logPath.Name())
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if err := smokeAPI(client, base); err != nil {
		return err
	}

	// Clean SIGTERM shutdown: exit code 0 and the farewell line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			log, _ := os.ReadFile(logPath.Name())
			return fmt.Errorf("server exited nonzero after SIGTERM: %v\n%s", err, log)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not exit within 30s of SIGTERM")
	}
	log, _ := os.ReadFile(logPath.Name())
	if !bytes.Contains(log, []byte("shutdown complete")) {
		return fmt.Errorf("server log missing 'shutdown complete':\n%s", log)
	}
	return nil
}

// waitListening polls the server log for the listening line and
// extracts the bound address.
func waitListening(logPath string) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(logPath)
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if addr, ok := strings.CutPrefix(line, "teaserve: listening on "); ok {
					return "http://" + strings.TrimSpace(addr), nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	data, _ := os.ReadFile(logPath)
	return "", fmt.Errorf("server never printed its listening line; log:\n%s", data)
}

// smokeAPI walks every endpoint of the /v1 surface.
func smokeAPI(client *http.Client, base string) error {
	// Health first.
	if err := expectStatus(client, "GET", base+"/v1/healthz", "", 200); err != nil {
		return err
	}

	// Malformed submissions: bad JSON, unknown field, both 400 with the
	// JSON error envelope; unknown paths and jobs are JSON 404s.
	for _, tc := range []struct {
		method, path, body string
		status             int
	}{
		{"POST", "/v1/jobs", `{{{`, 400},
		{"POST", "/v1/jobs", `{"workload":"mcf","bogus":1}`, 400},
		{"POST", "/v1/jobs", `{"workload":"doom"}`, 400},
		{"GET", "/v1/jobs/j-999999", "", 404},
		{"GET", "/totally/unknown", "", 404},
	} {
		if err := expectErrorEnvelope(client, tc.method, base+tc.path, tc.body, tc.status); err != nil {
			return err
		}
	}

	// A real job, polled to completion.
	id, err := submit(client, base, `{"tenant":"smoke","workload":"mcf","techniques":["tea","golden"],"config":{"scale":0.05}}`)
	if err != nil {
		return err
	}
	view, err := awaitJob(client, base, id)
	if err != nil {
		return err
	}
	if view.Status != "done" {
		return fmt.Errorf("job %s finished %q, want done", id, view.Status)
	}

	// The core contract: raw profile bytes identical to a local run.
	w, err := workloads.ByName("mcf")
	if err != nil {
		return err
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	br := analysis.RunProgram(w, w.Build(rc.Iters(w)), rc)
	for name, p := range map[string]interface{ WriteJSON(io.Writer) error }{
		"tea": br.TEA, "golden": br.Golden,
	} {
		var want bytes.Buffer
		if err := p.WriteJSON(&want); err != nil {
			return err
		}
		got, err := get(client, base+"/v1/jobs/"+id+"/profiles/"+name)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want.Bytes()) {
			return fmt.Errorf("%s profile from server (%d bytes) differs from local analysis.RunProgram (%d bytes)",
				name, len(got), want.Len())
		}
	}

	// Stream a second identical job; it must dedup (no new capture) and
	// the NDJSON protocol must terminate with an end record.
	stats1, err := getStats(client, base)
	if err != nil {
		return err
	}
	id2, err := submit(client, base, `{"tenant":"smoke-2","workload":"mcf","techniques":["tea"],"config":{"scale":0.05}}`)
	if err != nil {
		return err
	}
	if err := streamToEnd(client, base, id2); err != nil {
		return err
	}
	stats2, err := getStats(client, base)
	if err != nil {
		return err
	}
	if stats2.Captures != stats1.Captures {
		return fmt.Errorf("identical job recaptured: captures %d -> %d", stats1.Captures, stats2.Captures)
	}
	if stats2.Submitted < 2 {
		return fmt.Errorf("stats submitted = %d, want >= 2", stats2.Submitted)
	}

	// Cancel of a terminal job is a 409 conflict.
	if err := expectErrorEnvelope(client, "DELETE", base+"/v1/jobs/"+id, "", 409); err != nil {
		return err
	}
	return nil
}

type jobView struct {
	Status string `json:"status"`
}

type statsView struct {
	Submitted uint64 `json:"submitted"`
	Captures  uint64 `json:"captures"`
}

func submit(client *http.Client, base, body string) (string, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		return "", fmt.Errorf("submit: %d %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		return "", fmt.Errorf("submit response %q: %v", data, err)
	}
	return sub.ID, nil
}

func awaitJob(client *http.Client, base, id string) (jobView, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		data, err := get(client, base+"/v1/jobs/"+id)
		if err != nil {
			return jobView{}, err
		}
		var view jobView
		if err := json.Unmarshal(data, &view); err != nil {
			return jobView{}, err
		}
		switch view.Status {
		case "done", "failed", "canceled":
			return view, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return jobView{}, fmt.Errorf("job %s never finished", id)
}

func streamToEnd(client *http.Client, base, id string) error {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("stream: status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	sawProfile := false
	for {
		var rec struct {
			Type string   `json:"type"`
			Job  *jobView `json:"job"`
		}
		if err := dec.Decode(&rec); err == io.EOF {
			return fmt.Errorf("stream ended without an end record")
		} else if err != nil {
			return fmt.Errorf("stream decode: %w", err)
		}
		switch rec.Type {
		case "profile":
			sawProfile = true
		case "end":
			if rec.Job == nil || rec.Job.Status != "done" {
				return fmt.Errorf("stream end record %+v, want done job", rec.Job)
			}
			if !sawProfile {
				return fmt.Errorf("stream finished without a profile record")
			}
			return nil
		}
	}
}

func getStats(client *http.Client, base string) (statsView, error) {
	data, err := get(client, base+"/v1/stats")
	if err != nil {
		return statsView{}, err
	}
	var sv statsView
	if err := json.Unmarshal(data, &sv); err != nil {
		return statsView{}, fmt.Errorf("stats decode: %w (%s)", err, data)
	}
	return sv, nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	return data, nil
}

func expectStatus(client *http.Client, method, url, body string, want int) error {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: got %d, want %d (%s)", method, url, resp.StatusCode, want, data)
	}
	return nil
}

// expectErrorEnvelope asserts both the status and the JSON error
// contract: {"error":{"kind":...,"status":...,"message":...}}.
func expectErrorEnvelope(client *http.Client, method, url, body string, want int) error {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: got %d, want %d (%s)", method, url, resp.StatusCode, want, data)
	}
	var env struct {
		Error *struct {
			Kind    string `json:"kind"`
			Status  int    `json:"status"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil {
		return fmt.Errorf("%s %s: %d response is not an error envelope: %s", method, url, resp.StatusCode, data)
	}
	if env.Error.Kind == "" || env.Error.Status != want || env.Error.Message == "" {
		return fmt.Errorf("%s %s: malformed error envelope %s", method, url, data)
	}
	return nil
}
