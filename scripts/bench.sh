#!/bin/sh
# Run the full benchmark harness (one testing.B per table/figure of the
# paper, with -benchmem) and emit machine-readable results as
# BENCH_<date>.json in the repository root.
#
#   ./scripts/bench.sh                 full run (default -benchtime)
#   BENCHTIME=1x ./scripts/bench.sh    one iteration per benchmark (smoke)
#   LABEL=after ./scripts/bench.sh     tag the JSON with a label
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
label="${LABEL:-}"
date="$(date +%Y-%m-%d)"
out="BENCH_${date}${label:+_$label}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench=. -benchmem -benchtime="$benchtime" -timeout 60m . | tee "$raw"
go run ./cmd/teabench -label "$label" -date "$date" -o "$out" < "$raw"
echo "wrote $out"

# Codec benchmarks (internal/trace): v4 vs v3 encode/decode and the
# suite compression totals, written as a separate _codec file so `make
# bench-codec` and the check.sh codec gate share one baseline format.
codec_out="BENCH_${date}_codec${label:+-$label}.json"
go test ./internal/trace -run='^$' -bench='^BenchmarkCodec' -benchmem \
	-benchtime="$benchtime" -timeout 30m | tee "$raw"
go run ./cmd/teabench -label "codec${label:+-$label}" -date "$date" -o "$codec_out" < "$raw"
echo "wrote $codec_out"
