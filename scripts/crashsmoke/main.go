// Command crashsmoke is the gate's crash-recovery check: it boots a
// real teaserve binary with a job journal, completes one job and saves
// its profile bytes, submits a batch more, then SIGKILLs the server
// mid-run — no drain, no journal close. A second server started on the
// same journal directory must (a) serve the completed job's profile
// byte-identical to the pre-crash response, and (b) finish every
// interrupted job with profiles byte-identical to the same spec's
// pre-crash run. Recovery must also be visible in /v1/stats and the
// restarted server must report durable mode and shut down cleanly.
//
//	go build -o bin/teaserve ./cmd/teaserve
//	go run ./scripts/crashsmoke -bin bin/teaserve
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// jobBody is the one spec every smoke job uses, so byte-identity can
// be asserted across jobs as well as across the crash.
const jobBody = `{"tenant":"crash","workload":"mcf","techniques":["tea"],"config":{"scale":0.05}}`

// interrupted is how many jobs are in flight when the SIGKILL lands.
const interrupted = 4

func main() {
	bin := flag.String("bin", "bin/teaserve", "teaserve binary to smoke")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("crashsmoke: PASS")
}

// server is one teaserve process plus the log file its address is
// parsed from.
type server struct {
	cmd *exec.Cmd
	log string
	url string
}

func start(bin, journalDir string) (*server, error) {
	logFile, err := os.CreateTemp("", "crashsmoke-log-*")
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "64",
		"-quota-rate", "0",
		"-journal-dir", journalDir,
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	logFile.Close()
	s := &server{cmd: cmd, log: logFile.Name()}
	s.url, err = waitListening(s.log)
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return s, nil
}

func run(bin string) error {
	journalDir, err := os.MkdirTemp("", "crashsmoke-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(journalDir)

	s1, err := start(bin, journalDir)
	if err != nil {
		return err
	}
	defer s1.cmd.Process.Kill()
	defer os.Remove(s1.log)
	client := &http.Client{Timeout: 30 * time.Second}

	// Phase 1: complete one job and capture its exact profile bytes.
	doneID, err := submit(client, s1.url)
	if err != nil {
		return err
	}
	if status, err := await(client, s1.url, doneID, 60*time.Second); err != nil {
		return err
	} else if status != "done" {
		return fmt.Errorf("pre-crash job %s finished %q, want done", doneID, status)
	}
	want, err := profile(client, s1.url, doneID)
	if err != nil {
		return err
	}

	// Phase 2: put a batch in flight and kill -9 mid-run. A 202 means
	// the submission is journaled (the WAL append is fsync'd before the
	// response), so every one of these jobs must survive the crash.
	var inflight []string
	for i := 0; i < interrupted; i++ {
		id, err := submit(client, s1.url)
		if err != nil {
			return err
		}
		inflight = append(inflight, id)
	}
	if err := s1.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	s1.cmd.Wait() // reap; exit status is irrelevant after SIGKILL

	// Phase 3: restart on the same journal and check recovery.
	s2, err := start(bin, journalDir)
	if err != nil {
		return fmt.Errorf("restart after crash: %w", err)
	}
	defer s2.cmd.Process.Kill()
	defer os.Remove(s2.log)

	got, err := profile(client, s2.url, doneID)
	if err != nil {
		return fmt.Errorf("recovered job %s: %w", doneID, err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("recovered job %s: profile differs from pre-crash bytes (%d vs %d)",
			doneID, len(got), len(want))
	}
	for _, id := range inflight {
		status, err := await(client, s2.url, id, 120*time.Second)
		if err != nil {
			return fmt.Errorf("interrupted job %s: %w", id, err)
		}
		if status != "done" {
			return fmt.Errorf("interrupted job %s finished %q after recovery, want done", id, status)
		}
		got, err := profile(client, s2.url, id)
		if err != nil {
			return fmt.Errorf("interrupted job %s: %w", id, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("interrupted job %s: recovered profile differs from the pre-crash run (%d vs %d)",
				id, len(got), len(want))
		}
	}

	// Recovery must be observable: durable mode, and the replay counters
	// account for the restored and requeued jobs.
	var stats struct {
		Durability struct {
			Mode     string `json:"mode"`
			Recovery struct {
				Replayed     int `json:"replayed"`
				RestoredDone int `json:"restored_done"`
				Requeued     int `json:"requeued"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	if err := getInto(client, s2.url+"/v1/stats", &stats); err != nil {
		return err
	}
	d := stats.Durability
	if d.Mode != "durable" {
		return fmt.Errorf("restarted server mode %q, want durable", d.Mode)
	}
	if d.Recovery.Replayed == 0 || d.Recovery.RestoredDone+d.Recovery.Requeued == 0 {
		return fmt.Errorf("recovery counters empty after a crash restart: %+v", d.Recovery)
	}

	// Clean shutdown of the recovered server.
	if err := s2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- s2.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			log, _ := os.ReadFile(s2.log)
			return fmt.Errorf("recovered server exited nonzero after SIGTERM: %v\n%s", err, log)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("recovered server did not exit within 30s of SIGTERM")
	}
	return nil
}

func submit(client *http.Client, base string) (string, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(jobBody))
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit answered %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		return "", fmt.Errorf("undecodable submit response %q", data)
	}
	return sub.ID, nil
}

func await(client *http.Client, base, id string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var view struct {
			Status string `json:"status"`
		}
		if err := getInto(client, base+"/v1/jobs/"+id, &view); err != nil {
			return "", err
		}
		switch view.Status {
		case "done", "failed", "canceled":
			return view.Status, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return "", fmt.Errorf("job %s never reached a terminal status", id)
}

func profile(client *http.Client, base, id string) ([]byte, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/profiles/tea")
	if err != nil {
		return nil, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profile answered %d: %s", resp.StatusCode, data)
	}
	return data, nil
}

func getInto(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s answered %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// waitListening polls the server log for the listening line and
// extracts the bound address.
func waitListening(logPath string) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(logPath)
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if addr, ok := strings.CutPrefix(line, "teaserve: listening on "); ok {
					return "http://" + strings.TrimSpace(addr), nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("server never printed its listening line (log: %s)", logPath)
}
