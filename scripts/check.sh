#!/bin/sh
# Full pre-merge gate: build, vet, race-enabled tests, and the TEA
# invariant lint suite (standalone + vet-tool + -json modes).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# TEA invariant lint suite. `make lint` owns building the tealint
# binary and runs all three modes (standalone, vet-tool, -json smoke),
# so the gate and the Makefile cannot drift apart.
make lint

# Whole-program analyzer golden suites: the cross-package facts
# machinery (taint reachability, context threading, goroutine joins,
# typed-error boundaries) plus the checker and loader underneath it.
go test ./internal/lint/detreach ./internal/lint/ctxflow \
	./internal/lint/gojoin ./internal/lint/errbound \
	./internal/lint/checker ./internal/lint/load

# Robustness fuzz smoke: a short budget per target keeps the malformed-
# input contract (typed errors, no panics) exercised on every gate.
go test ./internal/trace -run='^$' -fuzz=FuzzReplay -fuzztime=10s
go test ./internal/pics -run='^$' -fuzz=FuzzProfileJSON -fuzztime=10s
go test ./internal/serve -run='^$' -fuzz=FuzzSubmit -fuzztime=10s

# Stitched-vs-serial smoke: interval-parallel capture must produce
# byte-identical traces and stats to serial capture for every suite
# workload (via verified stitching or its fingerprint-gated serial
# fallback), and the pinned convergent workloads must actually stitch.
go test ./internal/analysis -count=1 \
	-run 'TestParallelCapture(ByteIdentity|Converges)'

# Server smoke: boot a real teaserve on an ephemeral port with every
# documented flag, drive each /v1 endpoint over TCP, check the raw
# profile bytes against an in-process analysis.RunProgram, and verify
# SIGTERM shuts it down cleanly (exit 0).
go build -o bin/teaserve ./cmd/teaserve
go run ./scripts/servesmoke -bin bin/teaserve

# Crash-recovery smoke: boot teaserve with a job journal, finish one
# job, submit a batch, SIGKILL mid-run, restart on the same journal —
# the finished job's profile must come back byte-identical and every
# interrupted job must complete byte-identical after recovery.
go run ./scripts/crashsmoke -bin bin/teaserve

# Chaos smoke: the fault-injection sweep with a fixed seed — every
# fault kind against every technique; exits nonzero on any contract
# violation (crash, hang, or silently wrong profile). The -disk sweep
# then attacks the job journal (torn tail, bit flip, ENOSPC, EIO, slow
# I/O): never a crash, never wrong bytes, degraded mode on runtime
# write failure.
go build -o bin/teachaos ./cmd/teachaos
./bin/teachaos -seed 1 -workload bwaves -scale 0.05
./bin/teachaos -disk

# Benchmark smoke + regression gate: one iteration of every figure/table
# benchmark keeps the harness compiling and running (full runs: make
# bench), and teadiff compares its deterministic accuracy metrics
# against the committed baseline — bit-identical or the gate fails.
# Timing columns are reported by teadiff but never gated. The trap
# guarantees the temp files are removed even when a gate step fails
# (set -e exits straight through the old trailing rm).
bench_out=
bench_json=
trap 'rm -f "$bench_out" "$bench_json"' EXIT
bench_out=$(mktemp)
bench_json=$(mktemp)
go test -bench=. -benchtime=1x -timeout 30m . >"$bench_out"
go run ./cmd/teabench -label gate <"$bench_out" >"$bench_json"
go run ./cmd/teadiff -mode bench -baseline BENCH_2026-08-08_v4codec.json -current "$bench_json"

# Codec gate: the v4-vs-v3 codec benchmarks' deterministic metrics
# (byte totals, record counts, compression ratios, v4 digest halves)
# must be bit-identical to the committed baseline — any drift means the
# wire format changed without a FormatVersion bump and a new baseline.
go test ./internal/trace -run='^$' -bench='^BenchmarkCodec' -benchtime=1x -timeout 30m >"$bench_out"
go run ./cmd/teabench -label codec-gate <"$bench_out" >"$bench_json"
go run ./cmd/teadiff -mode bench -baseline BENCH_2026-08-08_codec.json -current "$bench_json"
