#!/bin/sh
# Full pre-merge gate: build, vet, race-enabled tests, and the TEA
# invariant lint suite (standalone + vet-tool modes).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

go build -o bin/tealint ./cmd/tealint
./bin/tealint ./...
go vet -vettool="$PWD/bin/tealint" ./...

# Benchmark smoke: one iteration of every figure/table benchmark keeps
# the harness compiling and running (full runs: make bench).
go test -bench=. -benchtime=1x -timeout 30m .
