// Command jsonsmoke is the lint gate's machine-readable-output check:
// it reads `tealint -json` output from stdin, verifies it parses back
// into the wire type the checker emits ([]checker.JSONDiagnostic, the
// contract dashboards and editor integrations consume), and fails if
// any diagnostic is present or structurally incomplete.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/lint/checker"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonsmoke: reading stdin:", err)
		os.Exit(1)
	}
	var diags []checker.JSONDiagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		fmt.Fprintln(os.Stderr, "jsonsmoke: tealint -json output does not parse:", err)
		os.Exit(1)
	}
	bad := false
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Message == "" || d.Analyzer == "" {
			fmt.Fprintf(os.Stderr, "jsonsmoke: structurally incomplete diagnostic: %+v\n", d)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
}
